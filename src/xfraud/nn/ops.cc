#include "xfraud/nn/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "xfraud/common/logging.h"

namespace xfraud::nn {

namespace {

using internal::VarImpl;

/// Builds the result node; attaches parents/backward only when needed.
Var MakeResult(Tensor value, std::vector<Var> inputs,
               std::function<void(VarImpl*)> backward_fn) {
  auto impl = std::make_shared<VarImpl>();
  impl->value = std::move(value);
  bool needs_grad = false;
  for (const auto& in : inputs) needs_grad = needs_grad || in.requires_grad();
  impl->requires_grad = needs_grad;
  if (needs_grad) {
    impl->parents.reserve(inputs.size());
    for (const auto& in : inputs) impl->parents.push_back(in.impl());
    impl->backward_fn = std::move(backward_fn);
  }
  return Var::FromImpl(std::move(impl));
}

/// Elementwise unary op helper: forward fn and local derivative from (x, y).
template <typename Fwd, typename Dydx>
Var UnaryElementwise(const Var& a, Fwd fwd, Dydx dydx) {
  Tensor out = Tensor::ZerosLike(a.value());
  const float* x = a.value().data();
  float* y = out.data();
  int64_t n = out.size();
  for (int64_t i = 0; i < n; ++i) y[i] = fwd(x[i]);
  auto a_impl = a.impl();
  return MakeResult(
      std::move(out), {a},
      [a_impl, dydx](VarImpl* self) {
        if (!a_impl->requires_grad) return;
        Tensor& ga = a_impl->EnsureGrad();
        const float* xv = a_impl->value.data();
        const float* yv = self->value.data();
        const float* gy = self->grad.data();
        float* gx = ga.data();
        int64_t count = self->value.size();
        for (int64_t i = 0; i < count; ++i) gx[i] += gy[i] * dydx(xv[i], yv[i]);
      });
}

}  // namespace

Var Constant(Tensor t) { return Var(std::move(t), /*requires_grad=*/false); }

Var MatMul(const Var& a, const Var& b) {
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  XF_CHECK_EQ(av.cols(), bv.rows());
  Tensor out(av.rows(), bv.cols());
  // Blocked kernel; no zero-skip shortcut, so 0·NaN / 0·Inf propagate and
  // timing is data-independent.
  kernels::Gemm(av, bv, &out);
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeResult(
      std::move(out), {a, b},
      [a_impl, b_impl](VarImpl* self) {
        const Tensor& g = self->grad;
        if (a_impl->requires_grad) {
          kernels::GemmTransBAdd(g, b_impl->value, &a_impl->EnsureGrad());
        }
        if (b_impl->requires_grad) {
          kernels::GemmTransAAdd(a_impl->value, g, &b_impl->EnsureGrad());
        }
      });
}

Var LinearBiasAct(const Var& x, const Var& w, const Var& bias,
                  kernels::Activation act) {
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  XF_CHECK_EQ(xv.cols(), wv.rows());
  const float* bias_ptr = nullptr;
  if (bias.defined()) {
    XF_CHECK_EQ(bias.value().rows(), 1);
    XF_CHECK_EQ(bias.value().cols(), wv.cols());
    bias_ptr = bias.value().Row(0);
  }
  Tensor out(xv.rows(), wv.cols());
  kernels::GemmBiasAct(xv, wv, bias_ptr, act, &out);
  std::vector<Var> inputs = {x, w};
  if (bias.defined()) inputs.push_back(bias);
  auto x_impl = x.impl();
  auto w_impl = w.impl();
  auto b_impl = bias.defined() ? bias.impl() : nullptr;
  return MakeResult(
      std::move(out), std::move(inputs),
      [x_impl, w_impl, b_impl, act](VarImpl* self) {
        // Pre-activation grad: ReLU gates on the output (y > 0 ⟺ pre > 0).
        const Tensor* dpre = &self->grad;
        Tensor gated;
        if (act == kernels::Activation::kRelu) {
          gated = self->grad;
          const float* y = self->value.data();
          float* gp = gated.data();
          for (int64_t i = 0; i < gated.size(); ++i) {
            if (!(y[i] > 0.0f)) gp[i] = 0.0f;
          }
          dpre = &gated;
        }
        if (x_impl->requires_grad) {
          kernels::GemmTransBAdd(*dpre, w_impl->value, &x_impl->EnsureGrad());
        }
        if (w_impl->requires_grad) {
          kernels::GemmTransAAdd(x_impl->value, *dpre, &w_impl->EnsureGrad());
        }
        if (b_impl != nullptr && b_impl->requires_grad) {
          kernels::ColSumAdd(*dpre, &b_impl->EnsureGrad());
        }
      });
}

Var Add(const Var& a, const Var& b) {
  XF_CHECK_SHAPE(a.value(), b.value());
  Tensor out = a.value();
  out.AddInPlace(b.value());
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeResult(std::move(out), {a, b}, [a_impl, b_impl](VarImpl* self) {
    if (a_impl->requires_grad) a_impl->EnsureGrad().AddInPlace(self->grad);
    if (b_impl->requires_grad) b_impl->EnsureGrad().AddInPlace(self->grad);
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  const Tensor& av = a.value();
  const Tensor& bv = bias.value();
  XF_CHECK_EQ(bv.rows(), 1);
  XF_CHECK_EQ(bv.cols(), av.cols());
  Tensor out = av;
  for (int64_t r = 0; r < av.rows(); ++r) {
    float* row = out.Row(r);
    const float* brow = bv.Row(0);
    for (int64_t c = 0; c < av.cols(); ++c) row[c] += brow[c];
  }
  auto a_impl = a.impl();
  auto b_impl = bias.impl();
  return MakeResult(std::move(out), {a, bias}, [a_impl,
                                                b_impl](VarImpl* self) {
    if (a_impl->requires_grad) a_impl->EnsureGrad().AddInPlace(self->grad);
    if (b_impl->requires_grad) {
      Tensor& gb = b_impl->EnsureGrad();
      const Tensor& g = self->grad;
      for (int64_t r = 0; r < g.rows(); ++r) {
        const float* grow = g.Row(r);
        float* gbrow = gb.Row(0);
        for (int64_t c = 0; c < g.cols(); ++c) gbrow[c] += grow[c];
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  XF_CHECK_SHAPE(a.value(), b.value());
  Tensor out = a.value();
  const float* bv = b.value().data();
  float* ov = out.data();
  for (int64_t i = 0; i < out.size(); ++i) ov[i] -= bv[i];
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeResult(std::move(out), {a, b}, [a_impl, b_impl](VarImpl* self) {
    if (a_impl->requires_grad) a_impl->EnsureGrad().AddInPlace(self->grad);
    if (b_impl->requires_grad) {
      Tensor& gb = b_impl->EnsureGrad();
      const float* g = self->grad.data();
      float* gbp = gb.data();
      for (int64_t i = 0; i < self->grad.size(); ++i) gbp[i] -= g[i];
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  XF_CHECK_SHAPE(a.value(), b.value());
  Tensor out = a.value();
  const float* bv = b.value().data();
  float* ov = out.data();
  for (int64_t i = 0; i < out.size(); ++i) ov[i] *= bv[i];
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeResult(std::move(out), {a, b}, [a_impl, b_impl](VarImpl* self) {
    const float* g = self->grad.data();
    int64_t n = self->grad.size();
    if (a_impl->requires_grad) {
      float* ga = a_impl->EnsureGrad().data();
      const float* bvals = b_impl->value.data();
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * bvals[i];
    }
    if (b_impl->requires_grad) {
      float* gb = b_impl->EnsureGrad().data();
      const float* avals = a_impl->value.data();
      for (int64_t i = 0; i < n; ++i) gb[i] += g[i] * avals[i];
    }
  });
}

Var Scale(const Var& a, float s) {
  return UnaryElementwise(
      a, [s](float x) { return s * x; },
      [s](float, float) { return s; });
}

Var AddConst(const Var& a, float c) {
  return UnaryElementwise(
      a, [c](float x) { return x + c; },
      [](float, float) { return 1.0f; });
}

Var Relu(const Var& a) {
  return UnaryElementwise(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var LeakyRelu(const Var& a, float alpha) {
  return UnaryElementwise(
      a, [alpha](float x) { return x >= 0.0f ? x : alpha * x; },
      [alpha](float x, float) { return x >= 0.0f ? 1.0f : alpha; });
}

Var Tanh(const Var& a) {
  return UnaryElementwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryElementwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Log(const Var& a) {
  return UnaryElementwise(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Var Dropout(const Var& a, float p, bool training, xfraud::Rng* rng) {
  if (!training || p <= 0.0f) return a;
  XF_CHECK_LT(p, 1.0f);
  XF_CHECK(rng != nullptr);
  float keep = 1.0f - p;
  auto mask = std::make_shared<std::vector<float>>(a.value().size());
  Tensor out = a.value();
  float* ov = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    float m = rng->NextBernoulli(p) ? 0.0f : 1.0f / keep;
    (*mask)[i] = m;
    ov[i] *= m;
  }
  auto a_impl = a.impl();
  return MakeResult(std::move(out), {a}, [a_impl, mask](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    float* ga = a_impl->EnsureGrad().data();
    const float* g = self->grad.data();
    for (int64_t i = 0; i < self->grad.size(); ++i) {
      ga[i] += g[i] * (*mask)[i];
    }
  });
}

Var RowSoftmax(const Var& a) {
  const Tensor& av = a.value();
  XF_CHECK_GT(av.cols(), 0) << "RowSoftmax over a zero-column tensor";
  Tensor out(av.rows(), av.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    const float* x = av.Row(r);
    float* y = out.Row(r);
    float mx = x[0];
    for (int64_t c = 1; c < av.cols(); ++c) mx = std::max(mx, x[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < av.cols(); ++c) {
      y[c] = std::exp(x[c] - mx);
      denom += y[c];
    }
    for (int64_t c = 0; c < av.cols(); ++c) y[c] /= denom;
  }
  auto a_impl = a.impl();
  return MakeResult(std::move(out), {a}, [a_impl](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    Tensor& ga = a_impl->EnsureGrad();
    const Tensor& y = self->value;
    const Tensor& g = self->grad;
    for (int64_t r = 0; r < y.rows(); ++r) {
      const float* yr = y.Row(r);
      const float* gr = g.Row(r);
      float dot = 0.0f;
      for (int64_t c = 0; c < y.cols(); ++c) dot += yr[c] * gr[c];
      float* gar = ga.Row(r);
      for (int64_t c = 0; c < y.cols(); ++c) {
        gar[c] += yr[c] * (gr[c] - dot);
      }
    }
  });
}

Var CrossEntropy(const Var& logits, const std::vector<int>& labels,
                 const std::vector<float>& class_weights) {
  const Tensor& lv = logits.value();
  XF_CHECK_EQ(static_cast<size_t>(lv.rows()), labels.size());
  int64_t n = lv.rows();
  int64_t c = lv.cols();
  XF_CHECK_GT(n, 0);
  XF_CHECK_GT(c, 0) << "CrossEntropy over zero-column logits";
  if (!class_weights.empty()) {
    XF_CHECK_EQ(static_cast<int64_t>(class_weights.size()), c);
  }
  // Softmax probabilities are cached for the backward pass.
  auto probs = std::make_shared<Tensor>(n, c);
  double total_weight = 0.0;
  double loss = 0.0;
  auto weights = std::make_shared<std::vector<float>>(n, 1.0f);
  for (int64_t r = 0; r < n; ++r) {
    const float* x = lv.Row(r);
    float* p = probs->Row(r);
    float mx = x[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, x[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      p[j] = std::exp(x[j] - mx);
      denom += p[j];
    }
    for (int64_t j = 0; j < c; ++j) p[j] /= denom;
    int label = labels[r];
    XF_CHECK_GE(label, 0);
    XF_CHECK_LT(label, c);
    float w = class_weights.empty() ? 1.0f : class_weights[label];
    (*weights)[r] = w;
    total_weight += w;
    loss -= w * std::log(std::max(p[label], 1e-12f));
  }
  XF_CHECK_GT(total_weight, 0.0)
      << "CrossEntropy: every present class has zero weight, the "
         "normalizer would divide by zero";
  loss /= total_weight;
  Tensor out(1, 1, static_cast<float>(loss));
  auto l_impl = logits.impl();
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  float inv_total = static_cast<float>(1.0 / total_weight);
  return MakeResult(
      std::move(out), {logits},
      [l_impl, probs, labels_copy, weights, inv_total](VarImpl* self) {
        if (!l_impl->requires_grad) return;
        float gy = self->grad.At(0, 0);
        Tensor& gl = l_impl->EnsureGrad();
        int64_t nrows = probs->rows();
        int64_t ncols = probs->cols();
        for (int64_t r = 0; r < nrows; ++r) {
          const float* p = probs->Row(r);
          float* g = gl.Row(r);
          float w = (*weights)[r] * inv_total * gy;
          for (int64_t j = 0; j < ncols; ++j) g[j] += w * p[j];
          g[(*labels_copy)[r]] -= w;
        }
      });
}

Var ConcatCols(const Var& a, const Var& b) {
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  XF_CHECK_EQ(av.rows(), bv.rows());
  Tensor out(av.rows(), av.cols() + bv.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    float* orow = out.Row(r);
    std::copy(av.Row(r), av.Row(r) + av.cols(), orow);
    std::copy(bv.Row(r), bv.Row(r) + bv.cols(), orow + av.cols());
  }
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  int64_t ac = av.cols();
  int64_t bc = bv.cols();
  return MakeResult(std::move(out), {a, b},
                    [a_impl, b_impl, ac, bc](VarImpl* self) {
                      const Tensor& g = self->grad;
                      if (a_impl->requires_grad) {
                        Tensor& ga = a_impl->EnsureGrad();
                        for (int64_t r = 0; r < g.rows(); ++r) {
                          const float* grow = g.Row(r);
                          float* garow = ga.Row(r);
                          for (int64_t c = 0; c < ac; ++c) {
                            garow[c] += grow[c];
                          }
                        }
                      }
                      if (b_impl->requires_grad) {
                        Tensor& gb = b_impl->EnsureGrad();
                        for (int64_t r = 0; r < g.rows(); ++r) {
                          const float* grow = g.Row(r);
                          float* gbrow = gb.Row(r);
                          for (int64_t c = 0; c < bc; ++c) {
                            gbrow[c] += grow[ac + c];
                          }
                        }
                      }
                    });
}

Var SliceCols(const Var& a, int64_t start, int64_t len) {
  const Tensor& av = a.value();
  XF_CHECK_GE(start, 0);
  XF_CHECK_LE(start + len, av.cols());
  Tensor out(av.rows(), len);
  for (int64_t r = 0; r < av.rows(); ++r) {
    std::copy(av.Row(r) + start, av.Row(r) + start + len, out.Row(r));
  }
  auto a_impl = a.impl();
  return MakeResult(std::move(out), {a}, [a_impl, start, len](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    Tensor& ga = a_impl->EnsureGrad();
    const Tensor& g = self->grad;
    for (int64_t r = 0; r < g.rows(); ++r) {
      const float* grow = g.Row(r);
      float* garow = ga.Row(r) + start;
      for (int64_t c = 0; c < len; ++c) garow[c] += grow[c];
    }
  });
}

Var IndexRows(const Var& a, const std::vector<int32_t>& indices) {
  const Tensor& av = a.value();
  Tensor out(static_cast<int64_t>(indices.size()), av.cols());
  kernels::GatherRows(av, indices, &out);
  auto a_impl = a.impl();
  auto idx = std::make_shared<std::vector<int32_t>>(indices);
  return MakeResult(std::move(out), {a}, [a_impl, idx](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    // Scatter-add by source row: each source row's contributions accumulate
    // in ascending gather position (serial stream or one worker per group).
    kernels::ScatterAddRowsKernel(self->grad, *idx, &a_impl->EnsureGrad());
  });
}

Var ScatterAddRows(const Var& a, const std::vector<int32_t>& index,
                   int64_t num_rows) {
  const Tensor& av = a.value();
  XF_CHECK_EQ(static_cast<size_t>(av.rows()), index.size());
  Tensor out(num_rows, av.cols());
  kernels::ScatterAddRowsKernel(av, index, &out);
  auto a_impl = a.impl();
  auto idx = std::make_shared<std::vector<int32_t>>(index);
  return MakeResult(std::move(out), {a}, [a_impl, idx](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    kernels::GatherAddRows(self->grad, *idx, &a_impl->EnsureGrad());
  });
}

Var SegmentSoftmax(const Var& a, const std::vector<int32_t>& segments,
                   int64_t num_segments) {
  const Tensor& av = a.value();
  XF_CHECK_EQ(static_cast<size_t>(av.rows()), segments.size());
  int64_t cols = av.cols();
  Tensor out(av.rows(), cols);
  // Numerically stable segment softmax: subtract per-(segment, col) max.
  Tensor seg_max(num_segments, cols, -std::numeric_limits<float>::infinity());
  for (int64_t e = 0; e < av.rows(); ++e) {
    int32_t s = segments[e];
    XF_CHECK_GE(s, 0);
    XF_CHECK_LT(s, num_segments);
    for (int64_t c = 0; c < cols; ++c) {
      seg_max.At(s, c) = std::max(seg_max.At(s, c), av.At(e, c));
    }
  }
  Tensor seg_sum(num_segments, cols);
  for (int64_t e = 0; e < av.rows(); ++e) {
    int32_t s = segments[e];
    for (int64_t c = 0; c < cols; ++c) {
      float v = std::exp(av.At(e, c) - seg_max.At(s, c));
      out.At(e, c) = v;
      seg_sum.At(s, c) += v;
    }
  }
  for (int64_t e = 0; e < av.rows(); ++e) {
    int32_t s = segments[e];
    for (int64_t c = 0; c < cols; ++c) {
      out.At(e, c) /= seg_sum.At(s, c);
    }
  }
  auto a_impl = a.impl();
  auto seg = std::make_shared<std::vector<int32_t>>(segments);
  return MakeResult(
      std::move(out), {a}, [a_impl, seg, num_segments](VarImpl* self) {
        if (!a_impl->requires_grad) return;
        const Tensor& y = self->value;
        const Tensor& g = self->grad;
        int64_t width = y.cols();
        // dot[s,c] = sum_e in s y*g.
        Tensor dot(num_segments, width);
        for (int64_t e = 0; e < y.rows(); ++e) {
          int32_t s = (*seg)[e];
          for (int64_t c = 0; c < width; ++c) {
            dot.At(s, c) += y.At(e, c) * g.At(e, c);
          }
        }
        Tensor& ga = a_impl->EnsureGrad();
        for (int64_t e = 0; e < y.rows(); ++e) {
          int32_t s = (*seg)[e];
          for (int64_t c = 0; c < width; ++c) {
            ga.At(e, c) += y.At(e, c) * (g.At(e, c) - dot.At(s, c));
          }
        }
      });
}

Var MulColBroadcast(const Var& a, const Var& col) {
  const Tensor& av = a.value();
  const Tensor& cv = col.value();
  XF_CHECK_EQ(av.rows(), cv.rows());
  XF_CHECK_EQ(cv.cols(), 1);
  Tensor out = av;
  for (int64_t r = 0; r < av.rows(); ++r) {
    float w = cv.At(r, 0);
    float* row = out.Row(r);
    for (int64_t c = 0; c < av.cols(); ++c) row[c] *= w;
  }
  auto a_impl = a.impl();
  auto c_impl = col.impl();
  return MakeResult(std::move(out), {a, col}, [a_impl, c_impl](VarImpl* self) {
    const Tensor& g = self->grad;
    if (a_impl->requires_grad) {
      Tensor& ga = a_impl->EnsureGrad();
      for (int64_t r = 0; r < g.rows(); ++r) {
        float w = c_impl->value.At(r, 0);
        const float* grow = g.Row(r);
        float* garow = ga.Row(r);
        for (int64_t c = 0; c < g.cols(); ++c) garow[c] += w * grow[c];
      }
    }
    if (c_impl->requires_grad) {
      Tensor& gc = c_impl->EnsureGrad();
      const Tensor& amat = a_impl->value;
      for (int64_t r = 0; r < g.rows(); ++r) {
        const float* grow = g.Row(r);
        const float* arow = amat.Row(r);
        float acc = 0.0f;
        for (int64_t c = 0; c < g.cols(); ++c) acc += grow[c] * arow[c];
        gc.At(r, 0) += acc;
      }
    }
  });
}

Var AttentionAggregate(const Var& scores, const Var& values,
                       const std::vector<int32_t>& dst, int64_t num_nodes,
                       int64_t head_dim, float dropout_p, bool training,
                       xfraud::Rng* rng) {
  const Tensor& sv = scores.value();
  const Tensor& vv = values.value();
  XF_CHECK_EQ(sv.rows(), vv.rows());
  XF_CHECK_EQ(static_cast<size_t>(sv.rows()), dst.size());
  XF_CHECK_GT(head_dim, 0);
  XF_CHECK_EQ(sv.cols() * head_dim, vv.cols());
  auto groups = std::make_shared<kernels::RowGroups>(
      kernels::BuildRowGroups(dst, num_nodes));
  // Pass 1: per-target softmax over [E,H] (kept for the backward).
  auto att = std::make_shared<Tensor>(sv.rows(), sv.cols());
  kernels::SegmentSoftmaxGrouped(sv, *groups, att.get());
  // Inverted-dropout mask on the attention weights, drawn row-major over
  // [E,H] — the exact RNG consumption order of the unfused Dropout op, so
  // fused and composed training trajectories are bit-identical.
  bool dropped = training && dropout_p > 0.0f;
  auto mask = std::make_shared<std::vector<float>>();
  Tensor w = *att;
  if (dropped) {
    XF_CHECK_LT(dropout_p, 1.0f);
    XF_CHECK(rng != nullptr);
    float keep = 1.0f - dropout_p;
    mask->resize(static_cast<size_t>(att->size()));
    float* wp = w.data();
    for (int64_t i = 0; i < att->size(); ++i) {
      float m = rng->NextBernoulli(dropout_p) ? 0.0f : 1.0f / keep;
      (*mask)[static_cast<size_t>(i)] = m;
      wp[i] *= m;
    }
  }
  // Pass 2: weight the value block per head and aggregate per target node.
  Tensor out(num_nodes, vv.cols());
  kernels::WeightedScatterAddGrouped(vv, w, *groups, head_dim, &out);
  auto s_impl = scores.impl();
  auto v_impl = values.impl();
  auto dst_copy = std::make_shared<std::vector<int32_t>>(dst);
  return MakeResult(
      std::move(out), {scores, values},
      [s_impl, v_impl, groups, att, mask, dst_copy, head_dim](VarImpl* self) {
        const Tensor& gout = self->grad;
        // Recompute w = att ⊙ mask (cheaper than keeping both alive).
        Tensor w_back = *att;
        if (!mask->empty()) {
          float* wp = w_back.data();
          for (int64_t i = 0; i < w_back.size(); ++i) {
            wp[i] *= (*mask)[static_cast<size_t>(i)];
          }
        }
        if (v_impl->requires_grad) {
          kernels::WeightedGatherAdd(gout, *dst_copy, w_back, head_dim,
                                     &v_impl->EnsureGrad());
        }
        if (s_impl->requires_grad) {
          Tensor datt(att->rows(), att->cols());
          kernels::PerHeadDots(gout, *dst_copy, v_impl->value, head_dim,
                               &datt);
          if (!mask->empty()) {
            float* dp = datt.data();
            for (int64_t i = 0; i < datt.size(); ++i) {
              dp[i] *= (*mask)[static_cast<size_t>(i)];
            }
          }
          kernels::SegmentSoftmaxBackwardGrouped(*att, datt, *groups,
                                                 &s_impl->EnsureGrad());
        }
      });
}

Var Sum(const Var& a) {
  Tensor out(1, 1, static_cast<float>(a.value().Sum()));
  auto a_impl = a.impl();
  return MakeResult(std::move(out), {a}, [a_impl](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    float gy = self->grad.At(0, 0);
    Tensor& ga = a_impl->EnsureGrad();
    float* g = ga.data();
    for (int64_t i = 0; i < ga.size(); ++i) g[i] += gy;
  });
}

Var Transpose(const Var& a) {
  const Tensor& av = a.value();
  Tensor out(av.cols(), av.rows());
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < av.cols(); ++c) out.At(c, r) = av.At(r, c);
  }
  auto a_impl = a.impl();
  return MakeResult(std::move(out), {a}, [a_impl](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    Tensor& ga = a_impl->EnsureGrad();
    const Tensor& g = self->grad;
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < g.cols(); ++c) ga.At(c, r) += g.At(r, c);
    }
  });
}

Var RowSum(const Var& a) {
  const Tensor& av = a.value();
  Tensor out(av.rows(), 1);
  for (int64_t r = 0; r < av.rows(); ++r) {
    const float* row = av.Row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < av.cols(); ++c) acc += row[c];
    out.At(r, 0) = acc;
  }
  auto a_impl = a.impl();
  return MakeResult(std::move(out), {a}, [a_impl](VarImpl* self) {
    if (!a_impl->requires_grad) return;
    Tensor& ga = a_impl->EnsureGrad();
    const Tensor& g = self->grad;
    for (int64_t r = 0; r < ga.rows(); ++r) {
      float gr = g.At(r, 0);
      float* garow = ga.Row(r);
      for (int64_t c = 0; c < ga.cols(); ++c) garow[c] += gr;
    }
  });
}

Var Mean(const Var& a) {
  int64_t n = a.value().size();
  XF_CHECK_GT(n, 0);
  return Scale(Sum(a), 1.0f / static_cast<float>(n));
}

Var LayerNorm(const Var& a, const Var& gamma, const Var& beta, float eps) {
  const Tensor& av = a.value();
  int64_t d = av.cols();
  XF_CHECK_EQ(gamma.value().rows(), 1);
  XF_CHECK_EQ(gamma.value().cols(), d);
  XF_CHECK_EQ(beta.value().rows(), 1);
  XF_CHECK_EQ(beta.value().cols(), d);

  auto xhat = std::make_shared<Tensor>(av.rows(), d);
  auto inv_std = std::make_shared<std::vector<float>>(av.rows());
  Tensor out(av.rows(), d);
  const float* gm = gamma.value().Row(0);
  const float* bt = beta.value().Row(0);
  for (int64_t r = 0; r < av.rows(); ++r) {
    const float* x = av.Row(r);
    double mean = 0.0;
    for (int64_t c = 0; c < d; ++c) mean += x[c];
    mean /= d;
    double var = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      double dv = x[c] - mean;
      var += dv * dv;
    }
    var /= d;
    float istd = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    (*inv_std)[r] = istd;
    float* xh = xhat->Row(r);
    float* y = out.Row(r);
    for (int64_t c = 0; c < d; ++c) {
      xh[c] = (x[c] - static_cast<float>(mean)) * istd;
      y[c] = xh[c] * gm[c] + bt[c];
    }
  }
  auto a_impl = a.impl();
  auto g_impl = gamma.impl();
  auto b_impl = beta.impl();
  return MakeResult(
      std::move(out), {a, gamma, beta},
      [a_impl, g_impl, b_impl, xhat, inv_std](VarImpl* self) {
        const Tensor& g = self->grad;
        int64_t dim = g.cols();
        const float* gmr = g_impl->value.Row(0);
        if (g_impl->requires_grad) {
          Tensor& gg = g_impl->EnsureGrad();
          float* ggr = gg.Row(0);
          for (int64_t r = 0; r < g.rows(); ++r) {
            const float* grow = g.Row(r);
            const float* xh = xhat->Row(r);
            for (int64_t c = 0; c < dim; ++c) ggr[c] += grow[c] * xh[c];
          }
        }
        if (b_impl->requires_grad) {
          Tensor& gb = b_impl->EnsureGrad();
          float* gbr = gb.Row(0);
          for (int64_t r = 0; r < g.rows(); ++r) {
            const float* grow = g.Row(r);
            for (int64_t c = 0; c < dim; ++c) gbr[c] += grow[c];
          }
        }
        if (a_impl->requires_grad) {
          Tensor& ga = a_impl->EnsureGrad();
          for (int64_t r = 0; r < g.rows(); ++r) {
            const float* grow = g.Row(r);
            const float* xh = xhat->Row(r);
            float istd = (*inv_std)[r];
            // dxhat = dy * gamma; dx via the standard layer-norm backward.
            double sum_dxhat = 0.0;
            double sum_dxhat_xhat = 0.0;
            for (int64_t c = 0; c < dim; ++c) {
              float dxh = grow[c] * gmr[c];
              sum_dxhat += dxh;
              sum_dxhat_xhat += dxh * xh[c];
            }
            float* garow = ga.Row(r);
            float inv_d = 1.0f / static_cast<float>(dim);
            for (int64_t c = 0; c < dim; ++c) {
              float dxh = grow[c] * gmr[c];
              garow[c] += istd * (dxh -
                                  static_cast<float>(sum_dxhat) * inv_d -
                                  xh[c] *
                                      static_cast<float>(sum_dxhat_xhat) *
                                      inv_d);
            }
          }
        }
      });
}

}  // namespace xfraud::nn
