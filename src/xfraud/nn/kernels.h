#ifndef XFRAUD_NN_KERNELS_H_
#define XFRAUD_NN_KERNELS_H_

#include <cstdint>
#include <vector>

#include "xfraud/nn/tensor.h"

namespace xfraud::nn::kernels {

// The compute-kernel layer under the autograd ops (DESIGN.md §13): blocked,
// fused, optionally thread-parallel inner loops. Two contracts hold for every
// kernel here:
//
//   1. *Bitwise conformance.* Each kernel produces bit-identical floats to
//      the naive reference implementation in kernels::reference (asserted by
//      tests/nn_kernels_test.cc via Tensor::BitwiseEqual). Blocking and
//      packing change the traversal, never the per-element accumulation
//      order, which stays ascending in the reduction index (k for GEMM, the
//      i/edge id for column sums and scatters).
//
//   2. *Deterministic parallelism.* SetNumThreads(n) only changes which
//      worker computes which disjoint slice of the output; every output
//      element is reduced by exactly one worker in the fixed order above, so
//      results are bit-identical at any thread count — the same contract
//      BatchLoader and dist::Communicator uphold.
//
// Kernels never skip terms (no zero-shortcuts): 0·NaN and 0·Inf must
// propagate, and timing must not depend on the data.

/// Optional activation fused into the GEMM epilogue.
enum class Activation { kNone, kRelu };

/// Sets the kernel worker count (1 = serial, the default). Thread-safe;
/// takes effect for subsequent kernel calls.
void SetNumThreads(int n);
int NumThreads();

/// C = act(A·B + bias). A [n,k], B [k,m], C preallocated [n,m] (overwritten).
/// `bias` is nullptr (no bias) or a length-m row added before `act`.
/// Cache-blocked over B panels (a packed column-tile layout) with a
/// register-tiled micro-kernel; parallel over row blocks of C.
void GemmBiasAct(const Tensor& a, const Tensor& b, const float* bias,
                 Activation act, Tensor* c);

/// C = A·B (no bias, no activation).
void Gemm(const Tensor& a, const Tensor& b, Tensor* c);

/// dA += G·Bᵀ. G [n,m], B [k,m], dA [n,k]. Row-dot form: B's row-major
/// storage is already the transposed-operand layout, so every dot product
/// streams two contiguous rows. Parallel over rows of dA.
void GemmTransBAdd(const Tensor& g, const Tensor& b, Tensor* da);

/// dB += Aᵀ·G. A [n,k], G [n,m], dB [k,m]. i-outer loops keep G's row hot
/// across a k-block; the reduction over i stays ascending for every output
/// element. Parallel over k blocks (disjoint dB rows).
void GemmTransAAdd(const Tensor& a, const Tensor& g, Tensor* db);

/// gb[0,:] += column sums of G, reduced over rows in ascending order.
void ColSumAdd(const Tensor& g, Tensor* gb);

/// CSR-style grouping of row ids by group: rows[offsets[g]..offsets[g+1])
/// lists, in ascending row order, every r with group_of_row[r] == g. This is
/// the fixed reduction order that makes parallel scatters deterministic:
/// each group's reduction happens on one worker, ascending in r — exactly
/// the order the serial edge-loop reference uses.
struct RowGroups {
  int64_t num_groups = 0;
  std::vector<int64_t> offsets;  // size num_groups + 1
  std::vector<int32_t> rows;     // size = |group_of_row|, grouped
};

/// Builds RowGroups by stable counting sort. Checks every id is in
/// [0, num_groups).
RowGroups BuildRowGroups(const std::vector<int32_t>& group_of_row,
                         int64_t num_groups);

/// out[i,:] = a[idx[i],:]. out preallocated [|idx|, a.cols]. Parallel over
/// output rows (pure gather, no reduction).
void GatherRows(const Tensor& a, const std::vector<int32_t>& idx, Tensor* out);

/// out[g,:] += Σ_{r in group g} a[r,:], ascending r within each group.
/// Parallel over groups (disjoint output rows).
void ScatterAddGrouped(const Tensor& a, const RowGroups& groups, Tensor* out);

/// out[idx[r],:] += a[r,:]. Serial fast path of ScatterAddGrouped: when the
/// kernel pool has one thread it streams a in row order (no group build, no
/// indirection); with more threads it builds groups and dispatches to
/// ScatterAddGrouped. Both orders reduce each output element ascending in
/// r, so the results are bit-identical.
void ScatterAddRowsKernel(const Tensor& a, const std::vector<int32_t>& idx,
                          Tensor* out);

/// out[i,:] += g[idx[i],:] — the backward of a scatter-add (a gather with
/// accumulate). Parallel over output rows.
void GatherAddRows(const Tensor& g, const std::vector<int32_t>& idx,
                   Tensor* out);

/// att = per-(segment, column) softmax of scores, segments given as row
/// groups. Bit-identical to the unfused SegmentSoftmax op: per-segment
/// max/sum reductions run ascending in the row id. Parallel over segments.
void SegmentSoftmaxGrouped(const Tensor& scores, const RowGroups& groups,
                           Tensor* att);

/// out[g, h·hd+c] += Σ_{r in group g} w[r,h]·v[r, h·hd+c], ascending r.
/// w is [R, H], v is [R, H·hd]. The fused "apply attention then aggregate"
/// step: one pass over v instead of per-head slice/broadcast/concat/scatter
/// round trips. Parallel over groups.
void WeightedScatterAddGrouped(const Tensor& v, const Tensor& w,
                               const RowGroups& groups, int64_t head_dim,
                               Tensor* out);

/// dv[r, h·hd+c] += w[r,h]·gout[dst[r], h·hd+c] — the value-side backward of
/// the fused attention aggregate. Parallel over rows of dv (single writer).
void WeightedGatherAdd(const Tensor& gout, const std::vector<int32_t>& dst,
                       const Tensor& w, int64_t head_dim, Tensor* dv);

/// dw[r,h] = Σ_c v[r, h·hd+c]·gout[dst[r], h·hd+c], ascending c — the
/// attention-weight backward (per-edge, per-head dot). Overwrites dw.
/// Parallel over rows.
void PerHeadDots(const Tensor& gout, const std::vector<int32_t>& dst,
                 const Tensor& v, int64_t head_dim, Tensor* dw);

/// dscores[r,:] += att[r,:]·(datt[r,:] − dot[g(r),:]) with
/// dot[g,c] = Σ_{r in group g} att[r,c]·datt[r,c], ascending r — the
/// segment-softmax backward. Parallel over groups.
void SegmentSoftmaxBackwardGrouped(const Tensor& att, const Tensor& datt,
                                   const RowGroups& groups, Tensor* dscores);

namespace reference {

// Naive, unfused, serial reference kernels — the conformance oracle for the
// blocked/parallel versions above, and the "before" side of the
// bench_nn_ops fusion gates. Deliberately kept as straight triple loops.

void Gemm(const Tensor& a, const Tensor& b, Tensor* c);
void GemmTransBAdd(const Tensor& g, const Tensor& b, Tensor* da);
void GemmTransAAdd(const Tensor& a, const Tensor& g, Tensor* db);

}  // namespace reference

}  // namespace xfraud::nn::kernels

#endif  // XFRAUD_NN_KERNELS_H_
