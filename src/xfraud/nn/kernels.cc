#include "xfraud/nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>

#include "xfraud/common/logging.h"
#include "xfraud/common/thread_pool.h"

namespace xfraud::nn::kernels {

namespace {

// ---------------------------------------------------------------------------
// Threading. The kernel layer owns a private pool (never shared with the
// batch loader or DDP pools) and completion is tracked per call with a local
// latch, so concurrent callers — e.g. scoring-service request threads — can
// not observe each other's tasks.

std::mutex g_threads_mu;
int g_num_threads = 1;
std::unique_ptr<xfraud::ThreadPool> g_pool;  // non-null iff g_num_threads > 1

/// Decrements the latch on scope exit (exception-safe without catch-all).
class LatchGuard {
 public:
  LatchGuard(std::mutex* mu, std::condition_variable* cv, int64_t* pending)
      : mu_(mu), cv_(cv), pending_(pending) {}
  ~LatchGuard() {
    std::lock_guard<std::mutex> lock(*mu_);
    if (--*pending_ == 0) cv_->notify_all();
  }

 private:
  std::mutex* mu_;
  std::condition_variable* cv_;
  int64_t* pending_;
};

/// Runs fn over disjoint contiguous ranges covering [0, total). The split
/// only decides *which worker* computes a range; fn must write a disjoint
/// output slice per range with a fixed per-element reduction order, which is
/// what makes any thread count bit-identical (header contract 2).
void ParallelBlocks(int64_t total, int64_t grain,
                    const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  xfraud::ThreadPool* pool = nullptr;
  int threads = 1;
  {
    std::lock_guard<std::mutex> lock(g_threads_mu);
    threads = g_num_threads;
    pool = g_pool.get();
  }
  int64_t blocks = std::min<int64_t>(threads, (total + grain - 1) / grain);
  if (blocks <= 1 || pool == nullptr) {
    fn(0, total);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  int64_t pending = blocks;
  int64_t base = total / blocks;
  int64_t rem = total % blocks;
  int64_t begin = 0;
  for (int64_t blk = 0; blk < blocks; ++blk) {
    int64_t len = base + (blk < rem ? 1 : 0);
    int64_t end = begin + len;
    pool->Submit([&mu, &cv, &pending, &fn, begin, end] {
      LatchGuard guard(&mu, &cv, &pending);
      fn(begin, end);
    });
    begin = end;
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&pending] { return pending == 0; });
}

// ---------------------------------------------------------------------------
// GEMM micro-kernel geometry. B is packed into column panels of kJTile
// columns (zero-padded at the right edge); the micro-kernel holds a
// kITile x kJTile accumulator block in registers and reduces over k in
// ascending order — the same per-element order as the naive reference, so
// blocking never changes a single bit of the result.

constexpr int64_t kITile = 4;
constexpr int64_t kJTile = 16;

/// Packs B's columns [j0, j0+kJTile) into `panel` (K x kJTile, row-major),
/// zero-filling columns past B's edge.
void PackBPanel(const Tensor& b, int64_t j0, float* panel) {
  int64_t k_dim = b.rows();
  int64_t m = b.cols();
  int64_t jw = std::min<int64_t>(kJTile, m - j0);
  for (int64_t k = 0; k < k_dim; ++k) {
    const float* brow = b.Row(k) + j0;
    float* prow = panel + k * kJTile;
    int64_t j = 0;
    for (; j < jw; ++j) prow[j] = brow[j];
    for (; j < kJTile; ++j) prow[j] = 0.0f;
  }
}

inline float ApplyAct(float x, Activation act) {
  return act == Activation::kRelu ? (x > 0.0f ? x : 0.0f) : x;
}

/// C rows [i0, i0+ih) for panel columns [j0, j0+jw): register-tiled over
/// kITile rows, k ascending in the single inner reduction.
void GemmPanelRows(const Tensor& a, const float* panel, int64_t j0, int64_t jw,
                   int64_t i0, int64_t ih, const float* bias, Activation act,
                   Tensor* c) {
  int64_t k_dim = a.cols();
  int64_t i = i0;
  for (; i + kITile <= i0 + ih; i += kITile) {
    float acc[kITile][kJTile] = {};
    const float* a0 = a.Row(i);
    const float* a1 = a.Row(i + 1);
    const float* a2 = a.Row(i + 2);
    const float* a3 = a.Row(i + 3);
    for (int64_t k = 0; k < k_dim; ++k) {
      const float* p = panel + k * kJTile;
      float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
      for (int64_t j = 0; j < kJTile; ++j) {
        float bj = p[j];
        acc[0][j] += v0 * bj;
        acc[1][j] += v1 * bj;
        acc[2][j] += v2 * bj;
        acc[3][j] += v3 * bj;
      }
    }
    for (int64_t r = 0; r < kITile; ++r) {
      float* crow = c->Row(i + r) + j0;
      for (int64_t j = 0; j < jw; ++j) {
        float v = acc[r][j];
        if (bias != nullptr) v += bias[j0 + j];
        crow[j] = ApplyAct(v, act);
      }
    }
  }
  for (; i < i0 + ih; ++i) {  // remainder rows, one at a time
    float acc[kJTile] = {};
    const float* arow = a.Row(i);
    for (int64_t k = 0; k < k_dim; ++k) {
      const float* p = panel + k * kJTile;
      float v = arow[k];
      for (int64_t j = 0; j < kJTile; ++j) acc[j] += v * p[j];
    }
    float* crow = c->Row(i) + j0;
    for (int64_t j = 0; j < jw; ++j) {
      float v = acc[j];
      if (bias != nullptr) v += bias[j0 + j];
      crow[j] = ApplyAct(v, act);
    }
  }
}

}  // namespace

void SetNumThreads(int n) {
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> lock(g_threads_mu);
  if (n == g_num_threads) return;
  g_pool.reset();
  g_num_threads = n;
  if (n > 1) g_pool = std::make_unique<xfraud::ThreadPool>(static_cast<size_t>(n));
}

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_threads_mu);
  return g_num_threads;
}

void GemmBiasAct(const Tensor& a, const Tensor& b, const float* bias,
                 Activation act, Tensor* c) {
  XF_CHECK_EQ(a.cols(), b.rows());
  XF_CHECK_EQ(c->rows(), a.rows());
  XF_CHECK_EQ(c->cols(), b.cols());
  int64_t n = a.rows();
  int64_t k_dim = b.rows();
  int64_t m = b.cols();
  if (n == 0 || m == 0) return;
  if (k_dim == 0) {
    for (int64_t i = 0; i < n; ++i) {
      float* crow = c->Row(i);
      for (int64_t j = 0; j < m; ++j) {
        crow[j] = ApplyAct(bias != nullptr ? bias[j] : 0.0f, act);
      }
    }
    return;
  }
  // Pack all of B once (shared read-only by every row block), then sweep
  // panels per row block so a panel stays L1-hot across its kITile rows.
  int64_t num_panels = (m + kJTile - 1) / kJTile;
  std::vector<float> packed(static_cast<size_t>(num_panels * k_dim * kJTile));
  for (int64_t p = 0; p < num_panels; ++p) {
    PackBPanel(b, p * kJTile, packed.data() + p * k_dim * kJTile);
  }
  // Row chunks sized so a chunk of A stays L1-resident while every panel
  // sweeps over it (panel inner, chunk outer).
  constexpr int64_t kRowChunk = 128;
  ParallelBlocks(n, /*grain=*/kITile * 8, [&](int64_t i0, int64_t i_end) {
    for (int64_t ic = i0; ic < i_end; ic += kRowChunk) {
      int64_t ih = std::min<int64_t>(kRowChunk, i_end - ic);
      for (int64_t p = 0; p < num_panels; ++p) {
        int64_t j0 = p * kJTile;
        int64_t jw = std::min<int64_t>(kJTile, m - j0);
        GemmPanelRows(a, packed.data() + p * k_dim * kJTile, j0, jw, ic, ih,
                      bias, act, c);
      }
    }
  });
}

void Gemm(const Tensor& a, const Tensor& b, Tensor* c) {
  GemmBiasAct(a, b, /*bias=*/nullptr, Activation::kNone, c);
}

void GemmTransBAdd(const Tensor& g, const Tensor& b, Tensor* da) {
  XF_CHECK_EQ(g.cols(), b.cols());
  XF_CHECK_EQ(da->rows(), g.rows());
  XF_CHECK_EQ(da->cols(), b.rows());
  int64_t m = g.cols();
  int64_t k_dim = b.rows();
  ParallelBlocks(g.rows(), /*grain=*/32, [&](int64_t i0, int64_t i_end) {
    for (int64_t i = i0; i < i_end; ++i) {
      const float* grow = g.Row(i);
      float* darow = da->Row(i);
      for (int64_t k = 0; k < k_dim; ++k) {
        const float* brow = b.Row(k);
        float acc = 0.0f;
        for (int64_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
        darow[k] += acc;
      }
    }
  });
}

void GemmTransAAdd(const Tensor& a, const Tensor& g, Tensor* db) {
  XF_CHECK_EQ(a.rows(), g.rows());
  XF_CHECK_EQ(db->rows(), a.cols());
  XF_CHECK_EQ(db->cols(), g.cols());
  int64_t n = a.rows();
  int64_t m = g.cols();
  // Parallel over disjoint k blocks (rows of dB); within a block the i loop
  // stays outermost and ascending, so each dB element's reduction order is
  // fixed no matter how the k space is split.
  ParallelBlocks(a.cols(), /*grain=*/8, [&](int64_t k0, int64_t k_end) {
    for (int64_t i = 0; i < n; ++i) {
      const float* arow = a.Row(i);
      const float* grow = g.Row(i);
      for (int64_t k = k0; k < k_end; ++k) {
        float aik = arow[k];
        float* dbrow = db->Row(k);
        for (int64_t j = 0; j < m; ++j) dbrow[j] += aik * grow[j];
      }
    }
  });
}

void ColSumAdd(const Tensor& g, Tensor* gb) {
  XF_CHECK_EQ(gb->rows(), 1);
  XF_CHECK_EQ(gb->cols(), g.cols());
  float* out = gb->Row(0);
  int64_t m = g.cols();
  for (int64_t r = 0; r < g.rows(); ++r) {
    const float* grow = g.Row(r);
    for (int64_t c = 0; c < m; ++c) out[c] += grow[c];
  }
}

RowGroups BuildRowGroups(const std::vector<int32_t>& group_of_row,
                         int64_t num_groups) {
  RowGroups out;
  out.num_groups = num_groups;
  out.offsets.assign(static_cast<size_t>(num_groups) + 1, 0);
  for (int32_t gid : group_of_row) {
    XF_CHECK_GE(gid, 0);
    XF_CHECK_LT(gid, num_groups);
    ++out.offsets[static_cast<size_t>(gid) + 1];
  }
  for (int64_t s = 0; s < num_groups; ++s) {
    out.offsets[static_cast<size_t>(s) + 1] +=
        out.offsets[static_cast<size_t>(s)];
  }
  out.rows.resize(group_of_row.size());
  std::vector<int64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (size_t r = 0; r < group_of_row.size(); ++r) {
    out.rows[static_cast<size_t>(cursor[group_of_row[r]]++)] =
        static_cast<int32_t>(r);
  }
  return out;
}

void GatherRows(const Tensor& a, const std::vector<int32_t>& idx,
                Tensor* out) {
  XF_CHECK_EQ(out->rows(), static_cast<int64_t>(idx.size()));
  XF_CHECK_EQ(out->cols(), a.cols());
  int64_t m = a.cols();
  if (NumThreads() <= 1) {
    // Serial fast path: bounds checks fold into the copy loop (one pass
    // over idx instead of two).
    for (size_t i = 0; i < idx.size(); ++i) {
      int32_t src = idx[i];
      XF_CHECK_GE(src, 0);
      XF_CHECK_LT(src, a.rows());
      const float* srow = a.Row(src);
      std::copy(srow, srow + m, out->Row(static_cast<int64_t>(i)));
    }
    return;
  }
  // Parallel: validate up front so a bad index throws on the caller's
  // thread, not inside a worker.
  for (int32_t src : idx) {
    XF_CHECK_GE(src, 0);
    XF_CHECK_LT(src, a.rows());
  }
  ParallelBlocks(
      static_cast<int64_t>(idx.size()), /*grain=*/256,
      [&](int64_t i0, int64_t i_end) {
        for (int64_t i = i0; i < i_end; ++i) {
          const float* src = a.Row(idx[static_cast<size_t>(i)]);
          std::copy(src, src + m, out->Row(i));
        }
      });
}

void ScatterAddGrouped(const Tensor& a, const RowGroups& groups, Tensor* out) {
  XF_CHECK_EQ(out->rows(), groups.num_groups);
  XF_CHECK_EQ(out->cols(), a.cols());
  XF_CHECK_EQ(static_cast<int64_t>(groups.rows.size()), a.rows());
  int64_t m = a.cols();
  ParallelBlocks(groups.num_groups, /*grain=*/64,
                 [&](int64_t g0, int64_t g_end) {
                   for (int64_t gid = g0; gid < g_end; ++gid) {
                     float* orow = out->Row(gid);
                     for (int64_t e = groups.offsets[static_cast<size_t>(gid)];
                          e < groups.offsets[static_cast<size_t>(gid) + 1];
                          ++e) {
                       const float* arow =
                           a.Row(groups.rows[static_cast<size_t>(e)]);
                       for (int64_t c = 0; c < m; ++c) orow[c] += arow[c];
                     }
                   }
                 });
}

void ScatterAddRowsKernel(const Tensor& a, const std::vector<int32_t>& idx,
                          Tensor* out) {
  XF_CHECK_EQ(a.rows(), static_cast<int64_t>(idx.size()));
  XF_CHECK_EQ(out->cols(), a.cols());
  if (NumThreads() <= 1) {
    // Serial fast path: stream a in row order, no group build. Each output
    // row still accumulates its contributions ascending in r — the same
    // per-element order as the grouped version, so bit-identical.
    int64_t m = a.cols();
    int64_t rows = out->rows();
    for (size_t r = 0; r < idx.size(); ++r) {
      int32_t d = idx[r];
      XF_CHECK_GE(d, 0);
      XF_CHECK_LT(d, rows);
      const float* arow = a.Row(static_cast<int64_t>(r));
      float* orow = out->Row(d);
      for (int64_t c = 0; c < m; ++c) orow[c] += arow[c];
    }
    return;
  }
  RowGroups groups = BuildRowGroups(idx, out->rows());
  ScatterAddGrouped(a, groups, out);
}

void GatherAddRows(const Tensor& g, const std::vector<int32_t>& idx,
                   Tensor* out) {
  XF_CHECK_EQ(out->rows(), static_cast<int64_t>(idx.size()));
  XF_CHECK_EQ(out->cols(), g.cols());
  int64_t m = g.cols();
  ParallelBlocks(
      static_cast<int64_t>(idx.size()), /*grain=*/256,
      [&](int64_t i0, int64_t i_end) {
        for (int64_t i = i0; i < i_end; ++i) {
          const float* grow = g.Row(idx[static_cast<size_t>(i)]);
          float* orow = out->Row(i);
          for (int64_t c = 0; c < m; ++c) orow[c] += grow[c];
        }
      });
}

void SegmentSoftmaxGrouped(const Tensor& scores, const RowGroups& groups,
                           Tensor* att) {
  XF_CHECK_EQ(att->rows(), scores.rows());
  XF_CHECK_EQ(att->cols(), scores.cols());
  XF_CHECK_EQ(static_cast<int64_t>(groups.rows.size()), scores.rows());
  int64_t h = scores.cols();
  ParallelBlocks(groups.num_groups, /*grain=*/64, [&](int64_t g0,
                                                      int64_t g_end) {
    std::vector<float> seg_max(static_cast<size_t>(h));
    std::vector<float> seg_sum(static_cast<size_t>(h));
    for (int64_t gid = g0; gid < g_end; ++gid) {
      int64_t begin = groups.offsets[static_cast<size_t>(gid)];
      int64_t end = groups.offsets[static_cast<size_t>(gid) + 1];
      if (begin == end) continue;
      std::fill(seg_max.begin(), seg_max.end(),
                -std::numeric_limits<float>::infinity());
      std::fill(seg_sum.begin(), seg_sum.end(), 0.0f);
      for (int64_t e = begin; e < end; ++e) {
        const float* srow = scores.Row(groups.rows[static_cast<size_t>(e)]);
        for (int64_t c = 0; c < h; ++c) {
          seg_max[static_cast<size_t>(c)] =
              std::max(seg_max[static_cast<size_t>(c)], srow[c]);
        }
      }
      for (int64_t e = begin; e < end; ++e) {
        int32_t r = groups.rows[static_cast<size_t>(e)];
        const float* srow = scores.Row(r);
        float* arow = att->Row(r);
        for (int64_t c = 0; c < h; ++c) {
          float v = std::exp(srow[c] - seg_max[static_cast<size_t>(c)]);
          arow[c] = v;
          seg_sum[static_cast<size_t>(c)] += v;
        }
      }
      for (int64_t e = begin; e < end; ++e) {
        float* arow = att->Row(groups.rows[static_cast<size_t>(e)]);
        for (int64_t c = 0; c < h; ++c) {
          arow[c] /= seg_sum[static_cast<size_t>(c)];
        }
      }
    }
  });
}

void WeightedScatterAddGrouped(const Tensor& v, const Tensor& w,
                               const RowGroups& groups, int64_t head_dim,
                               Tensor* out) {
  XF_CHECK_EQ(v.rows(), w.rows());
  XF_CHECK_EQ(w.cols() * head_dim, v.cols());
  XF_CHECK_EQ(out->rows(), groups.num_groups);
  XF_CHECK_EQ(out->cols(), v.cols());
  XF_CHECK_EQ(static_cast<int64_t>(groups.rows.size()), v.rows());
  int64_t heads = w.cols();
  ParallelBlocks(groups.num_groups, /*grain=*/64,
                 [&](int64_t g0, int64_t g_end) {
                   for (int64_t gid = g0; gid < g_end; ++gid) {
                     float* orow = out->Row(gid);
                     for (int64_t e = groups.offsets[static_cast<size_t>(gid)];
                          e < groups.offsets[static_cast<size_t>(gid) + 1];
                          ++e) {
                       int32_t r = groups.rows[static_cast<size_t>(e)];
                       const float* vrow = v.Row(r);
                       const float* wrow = w.Row(r);
                       for (int64_t h = 0; h < heads; ++h) {
                         float wv = wrow[h];
                         int64_t off = h * head_dim;
                         for (int64_t c = 0; c < head_dim; ++c) {
                           orow[off + c] += wv * vrow[off + c];
                         }
                       }
                     }
                   }
                 });
}

void WeightedGatherAdd(const Tensor& gout, const std::vector<int32_t>& dst,
                       const Tensor& w, int64_t head_dim, Tensor* dv) {
  XF_CHECK_EQ(dv->rows(), static_cast<int64_t>(dst.size()));
  XF_CHECK_EQ(dv->rows(), w.rows());
  XF_CHECK_EQ(w.cols() * head_dim, dv->cols());
  XF_CHECK_EQ(gout.cols(), dv->cols());
  int64_t heads = w.cols();
  ParallelBlocks(
      dv->rows(), /*grain=*/256, [&](int64_t r0, int64_t r_end) {
        for (int64_t r = r0; r < r_end; ++r) {
          const float* grow = gout.Row(dst[static_cast<size_t>(r)]);
          const float* wrow = w.Row(r);
          float* dvrow = dv->Row(r);
          for (int64_t h = 0; h < heads; ++h) {
            float wv = wrow[h];
            int64_t off = h * head_dim;
            for (int64_t c = 0; c < head_dim; ++c) {
              dvrow[off + c] += wv * grow[off + c];
            }
          }
        }
      });
}

void PerHeadDots(const Tensor& gout, const std::vector<int32_t>& dst,
                 const Tensor& v, int64_t head_dim, Tensor* dw) {
  XF_CHECK_EQ(dw->rows(), static_cast<int64_t>(dst.size()));
  XF_CHECK_EQ(dw->rows(), v.rows());
  XF_CHECK_EQ(dw->cols() * head_dim, v.cols());
  XF_CHECK_EQ(gout.cols(), v.cols());
  int64_t heads = dw->cols();
  ParallelBlocks(
      dw->rows(), /*grain=*/256, [&](int64_t r0, int64_t r_end) {
        for (int64_t r = r0; r < r_end; ++r) {
          const float* grow = gout.Row(dst[static_cast<size_t>(r)]);
          const float* vrow = v.Row(r);
          float* dwrow = dw->Row(r);
          for (int64_t h = 0; h < heads; ++h) {
            int64_t off = h * head_dim;
            float acc = 0.0f;
            for (int64_t c = 0; c < head_dim; ++c) {
              acc += grow[off + c] * vrow[off + c];
            }
            dwrow[h] = acc;
          }
        }
      });
}

void SegmentSoftmaxBackwardGrouped(const Tensor& att, const Tensor& datt,
                                   const RowGroups& groups, Tensor* dscores) {
  XF_CHECK_SHAPE(att, datt);
  XF_CHECK_EQ(dscores->rows(), att.rows());
  XF_CHECK_EQ(dscores->cols(), att.cols());
  XF_CHECK_EQ(static_cast<int64_t>(groups.rows.size()), att.rows());
  int64_t h = att.cols();
  ParallelBlocks(groups.num_groups, /*grain=*/64, [&](int64_t g0,
                                                      int64_t g_end) {
    std::vector<float> dot(static_cast<size_t>(h));
    for (int64_t gid = g0; gid < g_end; ++gid) {
      int64_t begin = groups.offsets[static_cast<size_t>(gid)];
      int64_t end = groups.offsets[static_cast<size_t>(gid) + 1];
      if (begin == end) continue;
      std::fill(dot.begin(), dot.end(), 0.0f);
      for (int64_t e = begin; e < end; ++e) {
        int32_t r = groups.rows[static_cast<size_t>(e)];
        const float* arow = att.Row(r);
        const float* grow = datt.Row(r);
        for (int64_t c = 0; c < h; ++c) {
          dot[static_cast<size_t>(c)] += arow[c] * grow[c];
        }
      }
      for (int64_t e = begin; e < end; ++e) {
        int32_t r = groups.rows[static_cast<size_t>(e)];
        const float* arow = att.Row(r);
        const float* grow = datt.Row(r);
        float* drow = dscores->Row(r);
        for (int64_t c = 0; c < h; ++c) {
          drow[c] += arow[c] * (grow[c] - dot[static_cast<size_t>(c)]);
        }
      }
    }
  });
}

namespace reference {

void Gemm(const Tensor& a, const Tensor& b, Tensor* c) {
  XF_CHECK_EQ(a.cols(), b.rows());
  XF_CHECK_EQ(c->rows(), a.rows());
  XF_CHECK_EQ(c->cols(), b.cols());
  c->Fill(0.0f);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (int64_t k = 0; k < a.cols(); ++k) {
      float aik = arow[k];  // no zero-skip: 0·NaN and 0·Inf must propagate
      const float* brow = b.Row(k);
      for (int64_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

void GemmTransBAdd(const Tensor& g, const Tensor& b, Tensor* da) {
  XF_CHECK_EQ(g.cols(), b.cols());
  XF_CHECK_EQ(da->rows(), g.rows());
  XF_CHECK_EQ(da->cols(), b.rows());
  for (int64_t i = 0; i < g.rows(); ++i) {
    const float* grow = g.Row(i);
    float* darow = da->Row(i);
    for (int64_t k = 0; k < b.rows(); ++k) {
      const float* brow = b.Row(k);
      float acc = 0.0f;
      for (int64_t j = 0; j < b.cols(); ++j) acc += grow[j] * brow[j];
      darow[k] += acc;
    }
  }
}

void GemmTransAAdd(const Tensor& a, const Tensor& g, Tensor* db) {
  XF_CHECK_EQ(a.rows(), g.rows());
  XF_CHECK_EQ(db->rows(), a.cols());
  XF_CHECK_EQ(db->cols(), g.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    const float* grow = g.Row(i);
    for (int64_t k = 0; k < a.cols(); ++k) {
      float aik = arow[k];
      float* dbrow = db->Row(k);
      for (int64_t j = 0; j < g.cols(); ++j) dbrow[j] += aik * grow[j];
    }
  }
}

}  // namespace reference

}  // namespace xfraud::nn::kernels
