#ifndef XFRAUD_NN_TENSOR_H_
#define XFRAUD_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xfraud/common/check.h"
#include "xfraud/common/rng.h"

namespace xfraud::nn {

/// Dense row-major 2-D float tensor — the value type of the autograd engine.
///
/// Everything a GNN needs here is naturally a matrix: node feature blocks
/// [N, D], per-edge message blocks [E, D], attention score blocks [E, H],
/// scalars as [1, 1]. Restricting to two dimensions keeps the engine small
/// and auditable while covering the full xFraud model (paper eqs. 2-11).
class Tensor {
 public:
  Tensor() = default;

  /// Creates a rows x cols tensor filled with `fill`.
  Tensor(int64_t rows, int64_t cols, float fill = 0.0f);

  /// Creates a tensor wrapping the given data (size must be rows*cols).
  Tensor(int64_t rows, int64_t cols, std::vector<float> data);

  /// All-zeros tensor with the same shape as `like`.
  static Tensor ZerosLike(const Tensor& like);

  /// Entries drawn i.i.d. from U(-bound, bound).
  static Tensor Uniform(int64_t rows, int64_t cols, float bound,
                        xfraud::Rng* rng);

  /// Entries drawn i.i.d. from N(0, stddev^2).
  static Tensor Gaussian(int64_t rows, int64_t cols, float stddev,
                         xfraud::Rng* rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& At(int64_t r, int64_t c) {
    XF_DCHECK_BOUNDS(r, rows_);
    XF_DCHECK_BOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }
  float At(int64_t r, int64_t c) const {
    XF_DCHECK_BOUNDS(r, rows_);
    XF_DCHECK_BOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }

  float* Row(int64_t r) {
    XF_DCHECK_BOUNDS(r, rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(int64_t r) const {
    XF_DCHECK_BOUNDS(r, rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& vec() const { return data_; }
  std::vector<float>& vec() { return data_; }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Accumulates `other` into this tensor; shapes must match.
  void AddInPlace(const Tensor& other);

  /// Multiplies every entry by `s`.
  void ScaleInPlace(float s);

  /// Sum of all entries.
  double Sum() const;

  /// L2 norm of all entries.
  double Norm() const;

  /// True when the shapes match (says nothing about the entries; use
  /// BitwiseEqual to compare contents).
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// True when shapes match and every entry is bit-for-bit identical.
  /// Stricter than operator== on floats: NaNs with equal payloads compare
  /// equal, +0 and -0 compare different — exactly what the kernel
  /// conformance and determinism tests need.
  bool BitwiseEqual(const Tensor& other) const;

  /// Compact debug string, e.g. "Tensor[3x4]".
  std::string ShapeString() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace xfraud::nn

#endif  // XFRAUD_NN_TENSOR_H_
