#include "xfraud/nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "xfraud/common/atomic_file.h"

namespace xfraud::nn {

namespace {
constexpr char kMagic[4] = {'X', 'F', 'C', 'K'};
}  // namespace

Status SaveParameters(const std::vector<NamedParameter>& params,
                      const std::string& path) {
  // Serialize into memory, then publish with tmp-file + rename + CRC32
  // footer: a crash mid-save leaves the previous checkpoint intact, and a
  // torn/bit-flipped file is rejected at load instead of misparsed.
  std::ostringstream out;
  out.write(kMagic, 4);
  uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    uint32_t name_len = static_cast<uint32_t>(p.name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), name_len);
    int64_t rows = p.var.value().rows();
    int64_t cols = p.var.value().cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.var.value().data()),
              static_cast<std::streamsize>(rows * cols * sizeof(float)));
  }
  return AtomicWriteFileWithCrc(path, out.str());
}

Status LoadParameters(const std::string& path,
                      std::vector<NamedParameter>* params) {
  Result<std::string> raw = ReadFileVerifyCrc(path);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) {
      return Status::IoError("cannot open for read: " + path);
    }
    return raw.status();
  }
  std::istringstream in(std::move(raw).value());
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad checkpoint magic: " + path);
  }
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::unordered_map<std::string, Tensor> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > (1u << 20)) {
      return Status::Corruption("bad name length in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows < 0 || cols < 0) {
      return Status::Corruption("bad shape in " + path);
    }
    Tensor t(rows, cols);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(rows * cols * sizeof(float)));
    if (!in) return Status::Corruption("truncated payload in " + path);
    loaded.emplace(std::move(name), std::move(t));
  }
  for (auto& p : *params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p.name);
    }
    if (!it->second.SameShape(p.var.value())) {
      return Status::InvalidArgument("shape mismatch for " + p.name);
    }
    p.var.mutable_value() = it->second;
  }
  return Status::OK();
}

Status CopyParameters(const std::vector<NamedParameter>& src,
                      std::vector<NamedParameter>* dst) {
  if (src.size() != dst->size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (!src[i].var.value().SameShape((*dst)[i].var.value())) {
      return Status::InvalidArgument("shape mismatch at " + src[i].name);
    }
    (*dst)[i].var.mutable_value() = src[i].var.value();
  }
  return Status::OK();
}

}  // namespace xfraud::nn
