#include "xfraud/common/crc32.h"

namespace xfraud {

namespace {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace xfraud
