#include "xfraud/common/retry.h"

#include <algorithm>

#include "xfraud/common/clock.h"
#include "xfraud/common/rng.h"

namespace xfraud::internal {

bool IsRetryable(const Status& s, const RetryPolicy& policy) {
  if (s.IsIoError()) return true;
  return policy.retry_corruption && s.IsCorruption();
}

double BackoffAndSleep(const RetryPolicy& policy, uint64_t jitter_seed,
                       int next_attempt, double remaining_s) {
  double base = policy.initial_backoff_s;
  for (int i = 2; i < next_attempt; ++i) base *= policy.multiplier;
  base = std::min(base, policy.max_backoff_s);
  // Deterministic jitter: attempt k of a given seed always draws the same
  // factor, so a replayed fault sequence sleeps the same schedule.
  Rng rng(Rng::StreamSeed(jitter_seed, static_cast<uint64_t>(next_attempt)));
  double factor =
      1.0 + policy.jitter_frac * (2.0 * rng.NextDouble() - 1.0);
  // Clamp to the unspent deadline budget: the next attempt deserves its
  // shot, but never at the price of sleeping past the deadline.
  double sleep_s =
      std::max(0.0, std::min(base * factor, std::max(0.0, remaining_s)));
  CountRetry();
  Clock* clock = policy.clock != nullptr ? policy.clock : Clock::Real();
  clock->SleepFor(sleep_s);
  return sleep_s;
}

double PolicyNowSeconds(const RetryPolicy& policy) {
  Clock* clock = policy.clock != nullptr ? policy.clock : Clock::Real();
  return clock->NowSeconds();
}

}  // namespace xfraud::internal
