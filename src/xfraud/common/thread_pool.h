#ifndef XFRAUD_COMMON_THREAD_POOL_H_
#define XFRAUD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xfraud {

/// Fixed-size worker pool with a simple task queue. Used by the multi-threaded
/// KV loader and the distributed-training simulation.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. If any task
  /// threw since the last Wait, rethrows the first captured exception here
  /// (the pool itself survives and stays usable).
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_exception_;
};

/// Reusable barrier synchronizing a fixed number of participants. Used to
/// model the DDP gradient all-reduce rendezvous.
class Barrier {
 public:
  explicit Barrier(size_t parties);

  /// Blocks until all parties have arrived; the last arrival releases all.
  void ArriveAndWait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parties_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_THREAD_POOL_H_
