#include "xfraud/common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "xfraud/common/logging.h"

namespace xfraud {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  XF_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace xfraud
