#ifndef XFRAUD_COMMON_ATOMIC_FILE_H_
#define XFRAUD_COMMON_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "xfraud/common/status.h"

namespace xfraud {

/// Durable-write helpers. Every durable file the library produces (model
/// checkpoints, graph snapshots, trainer checkpoints, metrics dumps) goes
/// through here — writing `path + ".tmp"`, fsyncing, then renaming over the
/// target — so a crash at any instant leaves either the old file or the new
/// one, never a torn hybrid. xfraud_lint's `no-direct-write` rule bans
/// direct std::ofstream/::open writes elsewhere in src/xfraud to keep it
/// that way.

/// Atomically replaces `path` with `contents` (tmp file + fsync + rename).
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Like AtomicWriteFile, but appends an 8-byte footer
/// {crc32(contents): u32, "XFCR": 4 bytes} so readers can detect torn or
/// bit-flipped files without a format-specific checksum.
Status AtomicWriteFileWithCrc(const std::string& path,
                              std::string_view contents);

/// Reads a whole file. NotFound if it does not exist, IoError otherwise.
Result<std::string> ReadFileToString(const std::string& path);

/// Reads a file written by AtomicWriteFileWithCrc, verifies and strips the
/// CRC footer. A missing/corrupt footer or CRC mismatch (torn write, bit
/// flip, truncation) returns Status::Corruption.
Result<std::string> ReadFileVerifyCrc(const std::string& path);

}  // namespace xfraud

#endif  // XFRAUD_COMMON_ATOMIC_FILE_H_
