#ifndef XFRAUD_COMMON_RETRY_H_
#define XFRAUD_COMMON_RETRY_H_

#include <cstdint>
#include <utility>

#include "xfraud/common/status.h"

namespace xfraud {

class Clock;

/// Retry-with-exponential-backoff policy for transient I/O failures on the
/// KV serving path (paper §3.3.3: loaders read all graph state over a KV
/// store, where transient errors are the norm, not the exception).
///
/// The default policy (`max_attempts == 1`) performs exactly one attempt —
/// i.e. retries are opt-in and code paths that never configure a policy
/// behave exactly as before.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  int max_attempts = 1;
  /// Sleep before attempt 2; doubles (times `multiplier`) per retry.
  double initial_backoff_s = 1e-4;
  /// Backoff ceiling per sleep.
  double max_backoff_s = 0.05;
  double multiplier = 2.0;
  /// Each sleep is scaled by a deterministic factor in
  /// [1 - jitter_frac, 1 + jitter_frac] drawn from the jitter seed, so
  /// concurrent loader threads don't retry in lockstep.
  double jitter_frac = 0.2;
  /// Overall wall-clock budget across all attempts; once exceeded, the last
  /// failure is returned even if attempts remain.
  double deadline_s = 1e9;
  /// Corruption (e.g. a torn KV record) is retried like IoError when true —
  /// on a replicated store a re-read can hit a healthy replica.
  bool retry_corruption = true;
  /// Time source for the deadline and the backoff sleeps; nullptr means
  /// Clock::Real(). Inject a VirtualClock so retry-heavy chaos tests
  /// neither sleep real time nor flake on wall-clock jitter.
  Clock* clock = nullptr;

  bool enabled() const { return max_attempts > 1; }
};

namespace internal {

/// True if `s` is worth retrying under `policy` (IoError always;
/// Corruption when the policy says so).
bool IsRetryable(const Status& s, const RetryPolicy& policy);

/// Returns the jittered backoff before attempt `next_attempt` (2-based),
/// clamped to `remaining_s` — the unspent deadline budget — so a retry loop
/// never overshoots its deadline by a long backoff, then sleeps for it on
/// the policy's clock. Split from the template so the obs counters and the
/// sleep live in one translation unit.
double BackoffAndSleep(const RetryPolicy& policy, uint64_t jitter_seed,
                       int next_attempt, double remaining_s);

/// Obs bookkeeping hooks (counters retry/attempts, retry/retries,
/// retry/giveups). Declared here, *defined* in obs/retry_metrics.cc: the
/// dependency runs obs -> common at link time, so common/ never includes
/// obs/ headers and the module DAG stays acyclic (xfraud_analyze enforces
/// this).
void CountAttempt();
void CountRetry();
void CountGiveup();

/// The policy clock's current reading (Clock::Real() when unset).
/// Indirection keeps <chrono> out of this header's clients.
double PolicyNowSeconds(const RetryPolicy& policy);

}  // namespace internal

/// Runs `fn` (returning Status) up to `policy.max_attempts` times, sleeping
/// with exponential backoff + deterministic jitter between attempts, until
/// it succeeds, fails with a non-retryable status, exhausts attempts, or
/// exceeds the deadline. The jitter sequence is a pure function of
/// `jitter_seed` (derive it from the batch/op id via Rng::StreamSeed), so
/// fault-injection runs replay identically.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, uint64_t jitter_seed,
                        Fn&& fn) {
  const double start_s = internal::PolicyNowSeconds(policy);
  Status last = Status::OK();
  for (int attempt = 1;; ++attempt) {
    internal::CountAttempt();
    last = fn();
    if (last.ok() || !internal::IsRetryable(last, policy)) return last;
    const double elapsed_s = internal::PolicyNowSeconds(policy) - start_s;
    if (attempt >= policy.max_attempts || elapsed_s >= policy.deadline_s) {
      if (policy.enabled()) internal::CountGiveup();
      return last;
    }
    internal::BackoffAndSleep(policy, jitter_seed, attempt + 1,
                              policy.deadline_s - elapsed_s);
  }
}

}  // namespace xfraud

#endif  // XFRAUD_COMMON_RETRY_H_
