#include "xfraud/common/atomic_file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "xfraud/common/crc32.h"

namespace xfraud {

namespace {

constexpr char kCrcMagic[4] = {'X', 'F', 'C', 'R'};
constexpr size_t kFooterSize = 8;  // u32 crc + 4-byte magic

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed on " + path + ": " +
                             std::string(::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + ": " +
                           std::string(::strerror(errno)));
  }
  Status s = WriteAll(fd, contents.data(), contents.size(), tmp);
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IoError("fsync failed on " + tmp);
  }
  if (::close(fd) != 0 && s.ok()) {
    s = Status::IoError("close failed on " + tmp);
  }
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           std::string(::strerror(errno)));
  }
  return Status::OK();
}

Status AtomicWriteFileWithCrc(const std::string& path,
                              std::string_view contents) {
  uint32_t crc = Crc32(contents.data(), contents.size());
  std::string framed;
  framed.reserve(contents.size() + kFooterSize);
  framed.append(contents);
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  framed.append(kCrcMagic, sizeof(kCrcMagic));
  return AtomicWriteFile(path, framed);
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError("cannot open " + path + ": " +
                           std::string(::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat failed on " + path);
  }
  std::string out;
  out.resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read failed on " + path);
    }
    if (n == 0) break;  // racing truncation; surface the short size
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  out.resize(done);
  return out;
}

Result<std::string> ReadFileVerifyCrc(const std::string& path) {
  Result<std::string> raw = ReadFileToString(path);
  if (!raw.ok()) return raw.status();
  std::string data = std::move(raw).value();
  if (data.size() < kFooterSize) {
    return Status::Corruption("file too short for CRC footer: " + path);
  }
  const char* footer = data.data() + data.size() - kFooterSize;
  if (std::memcmp(footer + sizeof(uint32_t), kCrcMagic, sizeof(kCrcMagic)) !=
      0) {
    return Status::Corruption("missing CRC footer magic in " + path);
  }
  uint32_t stored;
  std::memcpy(&stored, footer, sizeof(stored));
  data.resize(data.size() - kFooterSize);
  uint32_t actual = Crc32(data.data(), data.size());
  if (actual != stored) {
    return Status::Corruption("CRC mismatch in " + path);
  }
  return data;
}

}  // namespace xfraud
