#ifndef XFRAUD_COMMON_CLOCK_H_
#define XFRAUD_COMMON_CLOCK_H_

#include <atomic>
#include <limits>

namespace xfraud {

/// Injectable time source. All code outside common/ must measure time and
/// sleep through a Clock* (the `no-raw-clock` lint rule enforces this), so
/// every latency-sensitive path — replicated reads, hedging, deadlines,
/// retry backoff — can run under a VirtualClock in tests: chaos scenarios
/// with seconds of injected latency replay in microseconds of real time,
/// and the observed timings are bit-identical across runs.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic seconds since an arbitrary epoch.
  virtual double NowSeconds() const = 0;

  /// Blocks (or advances virtual time) for `seconds`; <= 0 is a no-op.
  virtual void SleepFor(double seconds) = 0;

  /// Process-wide wall clock (steady_clock under the hood). Never null.
  static Clock* Real();
};

/// Deterministic clock for tests and benches: time only moves when a
/// sleeper advances it. SleepFor models the caller *experiencing* the wait,
/// so a single-threaded chaos test that "sleeps" 10 injected seconds
/// finishes instantly while every latency measurement still reads 10s.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(double start_s = 0.0) : now_s_(start_s) {}

  double NowSeconds() const override {
    return now_s_.load(std::memory_order_relaxed);
  }
  void SleepFor(double seconds) override {
    if (seconds > 0.0) Advance(seconds);
  }

  /// Moves time forward without a sleeper (e.g. to expire a breaker
  /// cool-off from the test body).
  void Advance(double seconds) {
    now_s_.fetch_add(seconds, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_s_;
};

/// An absolute point in time on some clock, plus the "no deadline" state.
/// Value type: cheap to copy, compare against, and pass down a call stack.
class Deadline {
 public:
  /// No deadline: never expires, infinite remaining budget.
  Deadline() = default;

  /// Expires `budget_s` from now on `clock` (must outlive the deadline).
  static Deadline After(Clock* clock, double budget_s) {
    Deadline d;
    d.clock_ = clock;
    d.deadline_s_ = clock->NowSeconds() + budget_s;
    return d;
  }

  bool unlimited() const { return clock_ == nullptr; }

  /// Seconds until expiry (negative once past; +inf when unlimited).
  double RemainingSeconds() const {
    if (unlimited()) return std::numeric_limits<double>::infinity();
    return deadline_s_ - clock_->NowSeconds();
  }

  bool Expired() const { return !unlimited() && RemainingSeconds() <= 0.0; }

 private:
  Clock* clock_ = nullptr;
  double deadline_s_ = 0.0;
};

/// Propagates a request deadline down a call stack without threading a
/// parameter through every interface: the scoring service opens a scope
/// around sampling + KV reads, and layers that cannot see the request
/// (FeatureStore loops, ReplicatedKvStore attempts) poll Current() to fail
/// fast with DeadlineExceeded instead of burning a dead request's budget.
///
/// Scopes nest per thread; the innermost scope wins. Not copyable — stack
/// allocate it for the duration of the guarded work.
class DeadlineScope {
 public:
  explicit DeadlineScope(const Deadline& deadline);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// The calling thread's innermost active deadline, or nullptr when no
  /// scope is open (callers treat nullptr as unlimited).
  static const Deadline* Current();

 private:
  const Deadline* prev_;
  Deadline deadline_;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_CLOCK_H_
