#include "xfraud/common/clock.h"

#include <chrono>
#include <thread>

namespace xfraud {

namespace {

class RealClock : public Clock {
 public:
  double NowSeconds() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepFor(double seconds) override {
    if (seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }
};

thread_local const Deadline* t_current_deadline = nullptr;

}  // namespace

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

DeadlineScope::DeadlineScope(const Deadline& deadline)
    : prev_(t_current_deadline), deadline_(deadline) {
  t_current_deadline = &deadline_;
}

DeadlineScope::~DeadlineScope() { t_current_deadline = prev_; }

const Deadline* DeadlineScope::Current() { return t_current_deadline; }

}  // namespace xfraud
