#ifndef XFRAUD_COMMON_TABLE_PRINTER_H_
#define XFRAUD_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace xfraud {

/// Renders aligned plain-text tables so the benchmark binaries can print rows
/// in the same layout as the paper's tables.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to `precision` decimals.
  static std::string Num(double value, int precision = 4);

  /// Writes the table (with a separator under the header) to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_TABLE_PRINTER_H_
