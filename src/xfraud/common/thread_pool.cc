#include "xfraud/common/thread_pool.h"

#include <atomic>

#include "xfraud/common/logging.h"

namespace xfraud {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    XF_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so tiny bodies don't drown in queue overhead.
  size_t chunks = std::min(n, threads_.size() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&next, n, chunk_size, &fn] {
      size_t begin = next.fetch_add(chunk_size);
      size_t end = std::min(begin + chunk_size, n);
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (thrown && !first_exception_) first_exception_ = thrown;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

Barrier::Barrier(size_t parties) : parties_(parties) {
  XF_CHECK_GT(parties, 0u);
}

void Barrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this, gen] { return generation_ != gen; });
}

}  // namespace xfraud
