#ifndef XFRAUD_COMMON_CRC32_H_
#define XFRAUD_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace xfraud {

/// CRC-32 (IEEE) of a byte span. Shared integrity primitive of the KV log
/// records, checkpoint files, and graph snapshots; lives in common/ so none
/// of those layers has to reach into another for a checksum.
uint32_t Crc32(const void* data, size_t size);

}  // namespace xfraud

#endif  // XFRAUD_COMMON_CRC32_H_
