#include "xfraud/common/check.h"

#include <cstring>

namespace xfraud::internal {

namespace {

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

}  // namespace

CheckMessage::CheckMessage(const char* file, int line, const char* condition) {
  stream_ << "[" << Basename(file) << ":" << line
          << "] Check failed: " << condition << " ";
}

void CheckFailThrower::operator&(const CheckMessage& m) const {
  throw CheckError(m.str());
}

}  // namespace xfraud::internal
