#ifndef XFRAUD_COMMON_TIMER_H_
#define XFRAUD_COMMON_TIMER_H_

#include <chrono>

namespace xfraud {

/// Monotonic wall-clock stopwatch used for the paper's time measurements
/// (train s/epoch, inference s/batch).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_TIMER_H_
