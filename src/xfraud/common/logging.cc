#include "xfraud/common/logging.h"

#include <atomic>
#include <cstring>

namespace xfraud {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

}  // namespace

LogLevel MinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_min_level.load()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace xfraud
