#include "xfraud/common/fd.h"

#include <errno.h>
#include <unistd.h>

namespace xfraud {

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
  }
  fd_ = fd;
}

}  // namespace xfraud
