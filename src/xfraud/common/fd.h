#ifndef XFRAUD_COMMON_FD_H_
#define XFRAUD_COMMON_FD_H_

namespace xfraud {

/// RAII owner of a POSIX file descriptor. Move-only; closing retries on
/// EINTR. Holds -1 when empty. The transport layer (dist/) passes these
/// around so no early-return path can leak a socket.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_FD_H_
