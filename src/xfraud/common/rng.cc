#include "xfraud/common/rng.h"

#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

Rng::State Rng::GetState() const {
  State out;
  for (int i = 0; i < 4; ++i) out.s[i] = state_[i];
  out.has_cached_gaussian = has_cached_gaussian_;
  out.cached_gaussian = cached_gaussian_;
  return out;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  XF_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  XF_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  XF_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    XF_CHECK_GE(w, 0.0);
    total += w;
  }
  XF_CHECK_GT(total, 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(NextUint64()); }

uint64_t Rng::StreamSeed(uint64_t root, uint64_t stream) {
  // Two SplitMix64 rounds over root, then fold the stream index in and mix
  // again — adjacent (root, stream) pairs land in unrelated states.
  uint64_t s = root;
  (void)SplitMix64(&s);
  uint64_t mixed = SplitMix64(&s) ^ (stream * 0x9E3779B97F4A7C15ULL);
  return SplitMix64(&mixed);
}

}  // namespace xfraud
