#ifndef XFRAUD_COMMON_STATUS_H_
#define XFRAUD_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace xfraud {

/// Error categories used across the library. Mirrors the RocksDB/Arrow idiom:
/// fallible operations return a Status (or a Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// A cheap value type describing the outcome of a fallible operation.
///
/// Usage:
///   Status s = store.Put(key, value);
///   if (!s.ok()) return s;
///
/// [[nodiscard]] at class scope: dropping any returned Status on the floor
/// is a compile-time warning (and an xfraud_analyze `discarded-status`
/// finding). Ignore deliberately with `(void)` plus a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The serving path's shed/failover verdict: the request was refused or
  /// every replica is down — retrying later may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// A request deadline expired before the operation completed.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Human-readable representation, e.g. "InvalidArgument: bad dim".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal StatusOr analogue.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Accesses the held value.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define XF_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::xfraud::Status _xf_st = (expr);        \
    if (!_xf_st.ok()) return _xf_st;         \
  } while (false)

}  // namespace xfraud

#endif  // XFRAUD_COMMON_STATUS_H_
