#include "xfraud/common/frame.h"

#include <string>

#include "xfraud/common/crc32.h"

namespace xfraud {

namespace {

constexpr unsigned char kMagic[4] = {'X', 'F', 'R', 'M'};

void PutU16(unsigned char* out, uint16_t v) {
  out[0] = static_cast<unsigned char>(v & 0xFF);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFF);
}

void PutU32(unsigned char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

void PutU64(unsigned char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

uint16_t GetU16(const unsigned char* in) {
  return static_cast<uint16_t>(static_cast<uint16_t>(in[0]) |
                               static_cast<uint16_t>(in[1]) << 8);
}

uint32_t GetU32(const unsigned char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

uint32_t FramePayloadCrc(const void* payload, size_t n) {
  return Crc32(n > 0 ? payload : "", n);
}

void SealFramePayload(FrameHeader* header, const void* payload, size_t n) {
  header->payload_bytes = n;
  header->payload_crc = FramePayloadCrc(payload, n);
}

Status VerifyFramePayload(const FrameHeader& header, const void* payload,
                          size_t n) {
  if (header.payload_bytes != n) {
    return Status::Corruption(
        "frame: payload length mismatch: header says " +
        std::to_string(header.payload_bytes) + " bytes, got " +
        std::to_string(n));
  }
  const uint32_t crc = FramePayloadCrc(payload, n);
  if (crc != header.payload_crc) {
    return Status::Corruption("frame: payload CRC mismatch (type " +
                              std::to_string(static_cast<int>(header.type)) +
                              ", seq " + std::to_string(header.seq) + ")");
  }
  return Status::OK();
}

void EncodeFrameHeader(const FrameHeader& header, unsigned char* out) {
  for (int i = 0; i < 4; ++i) out[i] = kMagic[i];
  PutU16(out + 4, static_cast<uint16_t>(header.type));
  PutU16(out + 6, header.flags);
  PutU32(out + 8, header.rank);
  PutU64(out + 12, header.seq);
  PutU64(out + 20, header.payload_bytes);
  PutU32(out + 28, header.payload_crc);
}

Result<FrameHeader> DecodeFrameHeader(const unsigned char* data) {
  for (int i = 0; i < 4; ++i) {
    if (data[i] != kMagic[i]) {
      return Status::Corruption("frame: bad magic");
    }
  }
  FrameHeader header;
  uint16_t type = GetU16(data + 4);
  if (type < static_cast<uint16_t>(FrameType::kHello) ||
      type > static_cast<uint16_t>(FrameType::kDrain)) {
    return Status::Corruption("frame: unknown type " + std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  header.flags = GetU16(data + 6);
  header.rank = GetU32(data + 8);
  header.seq = GetU64(data + 12);
  header.payload_bytes = GetU64(data + 20);
  header.payload_crc = GetU32(data + 28);
  if (header.payload_bytes > kMaxFramePayload) {
    return Status::Corruption("frame: payload length " +
                              std::to_string(header.payload_bytes) +
                              " exceeds limit");
  }
  return header;
}

}  // namespace xfraud
