#ifndef XFRAUD_COMMON_MPMC_QUEUE_H_
#define XFRAUD_COMMON_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "xfraud/common/check.h"

namespace xfraud {

/// Bounded multi-producer / multi-consumer FIFO channel. Producers block in
/// Push while the queue is full; consumers block in Pop while it is empty.
/// Close() releases every blocked party: pending Push calls fail, and Pop
/// keeps draining buffered items before reporting end-of-stream, so a
/// producer can Close() after its last Push without losing items.
///
/// This is the backpressure primitive of the sample::BatchLoader pipeline
/// (prefetching sampler workers feeding a training consumer); see
/// DESIGN.md "Batch pipeline architecture".
template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` items (at least 1).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available, then enqueues `item`. Returns false
  /// (dropping the item) if the queue is closed before space opens up.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    XF_DCHECK_LT(items_.size(), capacity_);
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues without blocking; false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available and dequeues it. Returns nullopt
  /// once the queue is closed AND drained (the end-of-stream signal).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    XF_DCHECK_LE(items_.size(), capacity_);
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Dequeues without blocking; nullopt when empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the stream finished and wakes every blocked producer/consumer.
  /// Idempotent; buffered items remain poppable.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_MPMC_QUEUE_H_
