#ifndef XFRAUD_COMMON_LOGGING_H_
#define XFRAUD_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// The XF_CHECK / XF_DCHECK contract macros historically lived here; they now
// come from check.h, re-exported so every call site that includes logging.h
// keeps compiling.
#include "xfraud/common/check.h"

namespace xfraud {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum severity that is actually printed.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity (e.g. silence logs in benchmarks).
void SetMinLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it (with prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace xfraud

#define XF_LOG(level)                                                  \
  ::xfraud::internal::LogMessage(::xfraud::LogLevel::k##level,         \
                                 __FILE__, __LINE__)                   \
      .stream()

#endif  // XFRAUD_COMMON_LOGGING_H_
