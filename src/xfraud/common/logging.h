#ifndef XFRAUD_COMMON_LOGGING_H_
#define XFRAUD_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace xfraud {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum severity that is actually printed.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity (e.g. silence logs in benchmarks).
void SetMinLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it (with prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by XF_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace xfraud

#define XF_LOG(level)                                                  \
  ::xfraud::internal::LogMessage(::xfraud::LogLevel::k##level,         \
                                 __FILE__, __LINE__)                   \
      .stream()

/// Aborts with a message when `condition` is false. Internal invariants only;
/// recoverable failures return Status instead.
#define XF_CHECK(condition)                                            \
  if (condition) {                                                     \
  } else                                                               \
    ::xfraud::internal::FatalLogMessage(__FILE__, __LINE__, #condition) \
        .stream()

#define XF_CHECK_EQ(a, b) XF_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_NE(a, b) XF_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_LT(a, b) XF_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_LE(a, b) XF_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_GT(a, b) XF_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_GE(a, b) XF_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // XFRAUD_COMMON_LOGGING_H_
