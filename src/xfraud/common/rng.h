#ifndef XFRAUD_COMMON_RNG_H_
#define XFRAUD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xfraud {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded through
/// SplitMix64). Every stochastic component of the library (data generation,
/// weight init, dropout, samplers, tie-breaking draws) takes an explicit Rng
/// so whole experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Pre: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi]. Pre: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Returns true with probability p.
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Pre: weights non-empty, non-negative, with positive sum.
  size_t NextCategorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Splits off an independent child generator (for per-thread streams).
  Rng Split();

  /// Derives the seed of an independent sub-stream from a root seed and a
  /// stream index, by mixing both through SplitMix64. Unlike Split(), this
  /// is stateless: stream k of a root is the same no matter how many other
  /// streams were derived before it, which is what makes the pipelined
  /// BatchLoader bit-reproducible across worker counts (batch i always
  /// samples from StreamSeed(epoch_seed, i), regardless of which worker
  /// thread claims it).
  static uint64_t StreamSeed(uint64_t root, uint64_t stream);

  /// Complete generator state, snapshotable for checkpoint/resume. The
  /// Box-Muller gaussian cache is part of the state: dropping it would shift
  /// every subsequent NextGaussian() by one draw and break bit-identical
  /// resume.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  /// Snapshots the full generator state.
  State GetState() const;

  /// Restores a snapshot taken with GetState(); the restored generator
  /// produces the exact continuation of the snapshotted stream.
  void SetState(const State& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace xfraud

#endif  // XFRAUD_COMMON_RNG_H_
