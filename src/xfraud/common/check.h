#ifndef XFRAUD_COMMON_CHECK_H_
#define XFRAUD_COMMON_CHECK_H_

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace xfraud {

/// Thrown when an XF_CHECK* contract is violated. Carries the failing
/// condition text, file:line, and whatever the call site streamed into the
/// macro. Contract violations are programming errors, not recoverable I/O
/// conditions — recoverable failures return Status instead. An uncaught
/// CheckError terminates the process with the message via std::terminate,
/// so CLI behaviour matches the old abort()-based macros; tests and the
/// ThreadPool exception channel can catch it instead of forking a death
/// test (which sanitizer builds cannot do reliably).
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

/// Accumulates the failure message for one violated check. Only constructed
/// on the failure path, so the macros cost a branch when the contract holds.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition);

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

/// Terminal of the check macros: `Thrower{} & message` throws. Using `&`
/// (lower precedence than `<<`) lets call sites stream context first.
struct CheckFailThrower {
  [[noreturn]] void operator&(const CheckMessage& m) const;
};

/// Sign-safe `0 <= index < bound` that never trips -Wtype-limits when the
/// index type is unsigned.
template <typename I, typename N>
constexpr bool IndexInBounds(I index, N bound) {
  if constexpr (std::is_signed_v<I>) {
    if (index < 0) return false;
  }
  if constexpr (std::is_signed_v<N>) {
    if (bound < 0) return false;
  }
  return static_cast<uint64_t>(index) < static_cast<uint64_t>(bound);
}

}  // namespace internal
}  // namespace xfraud

/// Throws CheckError with file:line and the streamed message when
/// `condition` is false. Always on, in every build type: use at API
/// boundaries (public entry points, deserialized input, cross-subsystem
/// hand-offs) where the cost is one branch per call, not per element.
/// Internal per-element invariants belong in XF_DCHECK.
///
/// The macro arguments must be side-effect free: the *_EQ/BOUNDS/SHAPE
/// forms re-evaluate them to build the failure message.
#define XF_CHECK(condition)                                               \
  if (condition) {                                                        \
  } else /* NOLINT(readability-braces-around-statements) */               \
    ::xfraud::internal::CheckFailThrower{} &                              \
        ::xfraud::internal::CheckMessage(__FILE__, __LINE__, #condition)

#define XF_CHECK_EQ(a, b) XF_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_NE(a, b) XF_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_LT(a, b) XF_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_LE(a, b) XF_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_GT(a, b) XF_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define XF_CHECK_GE(a, b) XF_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Bounds contract: 0 <= index < bound, sign-safe for mixed signedness.
#define XF_CHECK_BOUNDS(index, bound)                                     \
  XF_CHECK(::xfraud::internal::IndexInBounds((index), (bound)))           \
      << " (index " << (index) << " vs bound " << (bound) << ") "

/// Shape-agreement contract for anything exposing rows()/cols()
/// (nn::Tensor, la::Matrix).
#define XF_CHECK_SHAPE(a, b)                                              \
  XF_CHECK((a).rows() == (b).rows() && (a).cols() == (b).cols())          \
      << " (" << (a).rows() << "x" << (a).cols() << " vs " << (b).rows()  \
      << "x" << (b).cols() << ") "

/// Debug-only variants: identical to XF_CHECK* without NDEBUG; under NDEBUG
/// they compile to a never-entered loop, so the condition still type-checks
/// but is not evaluated and the optimizer removes the whole statement.
/// Use on hot per-element paths (tensor indexing, queue internals).
#ifdef NDEBUG
#define XF_DCHECK(condition) while (false) XF_CHECK(condition)
#define XF_DCHECK_EQ(a, b) while (false) XF_CHECK_EQ(a, b)
#define XF_DCHECK_NE(a, b) while (false) XF_CHECK_NE(a, b)
#define XF_DCHECK_LT(a, b) while (false) XF_CHECK_LT(a, b)
#define XF_DCHECK_LE(a, b) while (false) XF_CHECK_LE(a, b)
#define XF_DCHECK_GT(a, b) while (false) XF_CHECK_GT(a, b)
#define XF_DCHECK_GE(a, b) while (false) XF_CHECK_GE(a, b)
#define XF_DCHECK_BOUNDS(index, bound) while (false) XF_CHECK_BOUNDS(index, bound)
#define XF_DCHECK_SHAPE(a, b) while (false) XF_CHECK_SHAPE(a, b)
#else
#define XF_DCHECK(condition) XF_CHECK(condition)
#define XF_DCHECK_EQ(a, b) XF_CHECK_EQ(a, b)
#define XF_DCHECK_NE(a, b) XF_CHECK_NE(a, b)
#define XF_DCHECK_LT(a, b) XF_CHECK_LT(a, b)
#define XF_DCHECK_LE(a, b) XF_CHECK_LE(a, b)
#define XF_DCHECK_GT(a, b) XF_CHECK_GT(a, b)
#define XF_DCHECK_GE(a, b) XF_CHECK_GE(a, b)
#define XF_DCHECK_BOUNDS(index, bound) XF_CHECK_BOUNDS(index, bound)
#define XF_DCHECK_SHAPE(a, b) XF_CHECK_SHAPE(a, b)
#endif

#endif  // XFRAUD_COMMON_CHECK_H_
