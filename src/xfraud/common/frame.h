#ifndef XFRAUD_COMMON_FRAME_H_
#define XFRAUD_COMMON_FRAME_H_

#include <cstdint>
#include <cstddef>

#include "xfraud/common/status.h"

namespace xfraud {

/// Length-prefixed wire frame used by the dist/ socket transport, the
/// rank-0 rendezvous, and the multi-process serving tier. A frame is a
/// fixed 32-byte header followed by `payload_bytes` of payload:
///
///   [0..4)   magic  "XFRM"
///   [4..6)   type   u16 (FrameType)
///   [6..8)   flags  u16 (dtype / backend-specific bits)
///   [8..12)  rank   u32 (sender rank, or root, depending on type)
///   [12..20) seq    u64 (collective sequence number, generation, or
///                        request id)
///   [20..28) payload_bytes u64
///   [28..32) payload_crc   u32 (CRC32 of the payload bytes; CRC of the
///                               empty payload for payload-less frames)
///
/// Integers are encoded little-endian byte-by-byte, so the encoding is
/// host-endianness independent (frames only ever cross localhost today, but
/// the format does not bake that in). The payload CRC makes a torn or
/// bit-flipped payload detectable at the receiver: VerifyFramePayload
/// returns Corruption instead of silently accepting garbage. Serialization
/// lives in common/ so it carries no socket I/O — dist/ owns the fds.
enum class FrameType : uint16_t {
  kHello = 1,      // ring handshake: rank = sender's rank
  kJoin = 2,       // rendezvous: rank = joiner, seq = generation, payload = ring endpoint
  kAssign = 3,     // rendezvous reply: seq = generation, payload = successor endpoint
  kReduce = 4,     // all-reduce pass 1 (partial sums travel the ring)
  kResult = 5,     // all-reduce pass 2 (final sum travels the ring)
  kBroadcast = 6,  // broadcast payload, rank = root
  kBarrier = 7,    // empty token circling the ring
  kGather = 8,     // concatenated per-rank entries travelling toward root
  // Multi-process serving tier (serve/wire.h owns the payload codecs):
  kScoreRequest = 9,  // router -> shard server: seq = request id
  kScoreReply = 10,   // shard server -> router: seq echoes the request id
  kHealth = 11,       // supervisor ping/pong: seq echoes the nonce
  kDrain = 12,        // orderly shutdown: request and ack are both kDrain
};

/// Payload dtype, carried in `flags` for the numeric collectives.
enum class FrameDtype : uint16_t { kNone = 0, kFloat32 = 1, kFloat64 = 2 };

struct FrameHeader {
  FrameType type = FrameType::kHello;
  uint16_t flags = 0;
  uint32_t rank = 0;
  uint64_t seq = 0;
  uint64_t payload_bytes = 0;
  uint32_t payload_crc = 0;
};

inline constexpr size_t kFrameHeaderBytes = 32;

/// Frames above this payload size are rejected as corrupt — far above any
/// gradient buffer the simulation ships, far below anything that could make
/// a malformed length field allocate the host out of memory.
inline constexpr uint64_t kMaxFramePayload = 1ULL << 31;

/// CRC32 of a frame payload (the value carried at header offset 28).
uint32_t FramePayloadCrc(const void* payload, size_t n);

/// Stamps `header` with payload_bytes = n and the payload's CRC. Senders
/// call this (directly or via dist::SendFrame) before encoding.
void SealFramePayload(FrameHeader* header, const void* payload, size_t n);

/// Checks `n` received payload bytes against the CRC the sender sealed into
/// `header`. Returns Corruption on any mismatch — a torn read, a bit flip
/// on the wire, or a length that disagrees with the header.
Status VerifyFramePayload(const FrameHeader& header, const void* payload,
                          size_t n);

/// Encodes `header` into `out`, which must hold kFrameHeaderBytes.
void EncodeFrameHeader(const FrameHeader& header, unsigned char* out);

/// Decodes a header from `data` (kFrameHeaderBytes long). Returns
/// Corruption on a bad magic, unknown type, or oversized payload length.
Result<FrameHeader> DecodeFrameHeader(const unsigned char* data);

}  // namespace xfraud

#endif  // XFRAUD_COMMON_FRAME_H_
