#ifndef XFRAUD_COMMON_FRAME_H_
#define XFRAUD_COMMON_FRAME_H_

#include <cstdint>
#include <cstddef>

#include "xfraud/common/status.h"

namespace xfraud {

/// Length-prefixed wire frame used by the dist/ socket transport and the
/// rank-0 rendezvous. A frame is a fixed 28-byte header followed by
/// `payload_bytes` of payload:
///
///   [0..4)   magic  "XFRM"
///   [4..6)   type   u16 (FrameType)
///   [6..8)   flags  u16 (dtype / backend-specific bits)
///   [8..12)  rank   u32 (sender rank, or root, depending on type)
///   [12..20) seq    u64 (collective sequence number or generation)
///   [20..28) payload_bytes u64
///
/// Integers are encoded little-endian byte-by-byte, so the encoding is
/// host-endianness independent (frames only ever cross localhost today, but
/// the format does not bake that in). Serialization lives in common/ so it
/// carries no socket I/O — dist/ owns the fds.
enum class FrameType : uint16_t {
  kHello = 1,      // ring handshake: rank = sender's rank
  kJoin = 2,       // rendezvous: rank = joiner, seq = generation, payload = ring endpoint
  kAssign = 3,     // rendezvous reply: seq = generation, payload = successor endpoint
  kReduce = 4,     // all-reduce pass 1 (partial sums travel the ring)
  kResult = 5,     // all-reduce pass 2 (final sum travels the ring)
  kBroadcast = 6,  // broadcast payload, rank = root
  kBarrier = 7,    // empty token circling the ring
  kGather = 8,     // concatenated per-rank entries travelling toward root
};

/// Payload dtype, carried in `flags` for the numeric collectives.
enum class FrameDtype : uint16_t { kNone = 0, kFloat32 = 1, kFloat64 = 2 };

struct FrameHeader {
  FrameType type = FrameType::kHello;
  uint16_t flags = 0;
  uint32_t rank = 0;
  uint64_t seq = 0;
  uint64_t payload_bytes = 0;
};

inline constexpr size_t kFrameHeaderBytes = 28;

/// Frames above this payload size are rejected as corrupt — far above any
/// gradient buffer the simulation ships, far below anything that could make
/// a malformed length field allocate the host out of memory.
inline constexpr uint64_t kMaxFramePayload = 1ULL << 31;

/// Encodes `header` into `out`, which must hold kFrameHeaderBytes.
void EncodeFrameHeader(const FrameHeader& header, unsigned char* out);

/// Decodes a header from `data` (kFrameHeaderBytes long). Returns
/// Corruption on a bad magic, unknown type, or oversized payload length.
Result<FrameHeader> DecodeFrameHeader(const unsigned char* data);

}  // namespace xfraud

#endif  // XFRAUD_COMMON_FRAME_H_
