#include "xfraud/kv/feature_store.h"

#include <cstring>
#include <functional>

#include "xfraud/common/clock.h"
#include "xfraud/common/logging.h"

namespace xfraud::kv {

namespace {

std::string NodeKey(int32_t id) { return "n" + std::to_string(id); }
std::string FeatKey(int32_t id) { return "f" + std::to_string(id); }
std::string AdjKey(int32_t id) { return "a" + std::to_string(id); }

template <typename T>
void AppendPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view data, size_t* offset, T* out) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(out, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

// Polls the calling thread's DeadlineScope (serving-path requests open one
// around sampling + KV reads); no scope means no deadline.
Status CheckDeadline(const char* stage) {
  const Deadline* deadline = DeadlineScope::Current();
  if (deadline != nullptr && deadline->Expired()) {
    return Status::DeadlineExceeded(std::string(stage) +
                                    ": request deadline exhausted");
  }
  return Status::OK();
}

}  // namespace

Status FeatureStore::GetWithRetry(const std::string& key, std::string* value,
                                  uint64_t epoch) const {
  auto read = [&] {
    return epoch == kHeadEpoch ? store_->Get(key, value)
                               : store_->GetAt(key, epoch, value);
  };
  if (!retry_.enabled()) return read();
  // Jitter stream keyed by the record so concurrent loader threads
  // retrying different keys don't back off in lockstep, while a replayed
  // run retries each key on the identical schedule.
  uint64_t jitter_seed =
      Rng::StreamSeed(0x5254525EULL, std::hash<std::string>{}(key));
  return RetryWithBackoff(retry_, jitter_seed, read);
}

Status FeatureStore::Ingest(const graph::HeteroGraph& g) {
  std::string meta;
  AppendPod(&meta, g.num_nodes());
  AppendPod(&meta, g.feature_dim());
  XF_RETURN_IF_ERROR(store_->Put("m", meta));

  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    std::string node;
    AppendPod(&node, static_cast<uint8_t>(g.node_type(v)));
    AppendPod(&node, g.label(v));
    AppendPod(&node, static_cast<uint8_t>(g.HasFeatures(v) ? 1 : 0));
    XF_RETURN_IF_ERROR(store_->Put(NodeKey(v), node));

    if (g.HasFeatures(v)) {
      std::string feat(reinterpret_cast<const char*>(g.Features(v)),
                       g.feature_dim() * sizeof(float));
      XF_RETURN_IF_ERROR(store_->Put(FeatKey(v), feat));
    }

    std::string adj;
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      AppendPod(&adj, g.neighbors()[e]);
      AppendPod(&adj, static_cast<uint8_t>(g.edge_types()[e]));
    }
    XF_RETURN_IF_ERROR(store_->Put(AdjKey(v), adj));
  }
  return Status::OK();
}

Result<int64_t> FeatureStore::NumNodes(uint64_t epoch) const {
  std::string meta;
  XF_RETURN_IF_ERROR(GetWithRetry("m", &meta, epoch));
  size_t offset = 0;
  int64_t num_nodes = 0;
  if (!ReadPod(meta, &offset, &num_nodes)) {
    return Status::Corruption("bad metadata record");
  }
  return num_nodes;
}

Result<int64_t> FeatureStore::FeatureDim(uint64_t epoch) const {
  std::string meta;
  XF_RETURN_IF_ERROR(GetWithRetry("m", &meta, epoch));
  size_t offset = sizeof(int64_t);
  int64_t dim = 0;
  if (!ReadPod(meta, &offset, &dim)) {
    return Status::Corruption("bad metadata record");
  }
  return dim;
}

Status FeatureStore::ReadFeatures(int32_t node, std::vector<float>* out,
                                  uint64_t epoch) const {
  std::string raw;
  XF_RETURN_IF_ERROR(GetWithRetry(FeatKey(node), &raw, epoch));
  if (raw.size() % sizeof(float) != 0) {
    return Status::Corruption("bad feature record size");
  }
  out->resize(raw.size() / sizeof(float));
  std::memcpy(out->data(), raw.data(), raw.size());
  return Status::OK();
}

Status FeatureStore::ReadNeighbors(int32_t node,
                                   std::vector<int32_t>* neighbors,
                                   std::vector<uint8_t>* edge_types,
                                   uint64_t epoch) const {
  std::string raw;
  // Adjacency rows are immutable within a published epoch, so epoch-pinned
  // reads may be served from (and fill) the shared per-epoch cache. Head
  // rows mutate under writers — never cached.
  const bool cacheable = adj_cache_ != nullptr && epoch != kHeadEpoch;
  if (!cacheable || !adj_cache_->Lookup(epoch, node, &raw)) {
    XF_RETURN_IF_ERROR(GetWithRetry(AdjKey(node), &raw, epoch));
    if (cacheable) adj_cache_->Insert(epoch, node, raw);
  }
  constexpr size_t kEntry = sizeof(int32_t) + sizeof(uint8_t);
  if (raw.size() % kEntry != 0) {
    return Status::Corruption("bad adjacency record size");
  }
  size_t count = raw.size() / kEntry;
  neighbors->resize(count);
  edge_types->resize(count);
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    ReadPod(raw, &offset, &(*neighbors)[i]);
    ReadPod(raw, &offset, &(*edge_types)[i]);
    if ((*edge_types)[i] >= graph::kNumEdgeTypes) {
      return Status::Corruption("bad edge type byte " +
                                std::to_string((*edge_types)[i]));
    }
  }
  return Status::OK();
}

Status FeatureStore::ReadNode(int32_t node, graph::NodeType* type,
                              int8_t* label, uint64_t epoch) const {
  std::string raw;
  XF_RETURN_IF_ERROR(GetWithRetry(NodeKey(node), &raw, epoch));
  size_t offset = 0;
  uint8_t type_byte = 0, has_features = 0;
  if (!ReadPod(raw, &offset, &type_byte) || !ReadPod(raw, &offset, label) ||
      !ReadPod(raw, &offset, &has_features)) {
    return Status::Corruption("bad node record");
  }
  if (type_byte >= graph::kNumNodeTypes) {
    return Status::Corruption("bad node type byte " +
                              std::to_string(type_byte));
  }
  *type = static_cast<graph::NodeType>(type_byte);
  return Status::OK();
}

Result<graph::MiniBatch> FeatureStore::LoadBatch(
    const std::vector<int32_t>& seeds, int hops, int fanout, xfraud::Rng* rng,
    uint64_t epoch) const {
  return LoadBatchImpl(seeds, hops, fanout, rng, epoch, nullptr);
}

Result<graph::MiniBatch> FeatureStore::LoadBatchDegraded(
    const std::vector<int32_t>& seeds, int hops, int fanout,
    xfraud::Rng* rng, uint64_t epoch, DegradedLoadStats* stats) const {
  *stats = DegradedLoadStats{};
  return LoadBatchImpl(seeds, hops, fanout, rng, epoch, stats);
}

Result<graph::MiniBatch> FeatureStore::LoadBatchImpl(
    const std::vector<int32_t>& seeds, int hops, int fanout,
    xfraud::Rng* rng, uint64_t epoch, DegradedLoadStats* stats) const {
  // Metadata must be readable — without the feature dim no batch shape
  // exists, degraded or not.
  Result<int64_t> dim = FeatureDim(epoch);
  if (!dim.ok()) return dim.status();

  graph::MiniBatch batch;
  graph::Subgraph& sub = batch.sub;
  auto add_node = [&sub](int32_t global) {
    auto [it, inserted] = sub.local_of.emplace(
        global, static_cast<int32_t>(sub.nodes.size()));
    if (inserted) sub.nodes.push_back(global);
    return it->second;
  };

  std::vector<int32_t> frontier;
  for (int32_t seed : seeds) {
    if (sub.local_of.count(seed) == 0) {
      add_node(seed);
      frontier.push_back(seed);
    }
  }
  // BFS expansion through KV adjacency reads.
  std::vector<int32_t> neighbors;
  std::vector<uint8_t> etypes;
  for (int hop = 0; hop < hops && !frontier.empty(); ++hop) {
    std::vector<int32_t> next;
    for (int32_t v : frontier) {
      XF_RETURN_IF_ERROR(CheckDeadline("feature_store/expand"));
      Status ns = ReadNeighbors(v, &neighbors, &etypes, epoch);
      if (!ns.ok()) {
        if (stats == nullptr) return ns;
        // Degraded: the node stays in the batch, its neighborhood is
        // simply not expanded this hop.
        ++stats->failed_adjacency_reads;
        continue;
      }
      int64_t degree = static_cast<int64_t>(neighbors.size());
      int64_t take = fanout < 0 ? degree
                                : std::min<int64_t>(degree, fanout);
      // Partial shuffle when capping.
      std::vector<int64_t> order(degree);
      for (int64_t i = 0; i < degree; ++i) order[i] = i;
      if (take < degree) {
        for (int64_t i = 0; i < take; ++i) {
          int64_t j = i + static_cast<int64_t>(rng->NextBounded(degree - i));
          std::swap(order[i], order[j]);
        }
      }
      for (int64_t i = 0; i < take; ++i) {
        int32_t u = neighbors[order[i]];
        if (sub.local_of.count(u) == 0) {
          add_node(u);
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }

  // Induce edges and fill tensors via KV reads.
  batch.features = nn::Tensor(static_cast<int64_t>(sub.nodes.size()),
                              dim.value());
  batch.node_types.resize(sub.nodes.size());
  for (size_t local = 0; local < sub.nodes.size(); ++local) {
    int32_t global = sub.nodes[local];
    XF_RETURN_IF_ERROR(CheckDeadline("feature_store/materialize"));
    graph::NodeType type = graph::NodeType::kTxn;
    int8_t label = graph::kLabelUnknown;
    Status node_status = ReadNode(global, &type, &label, epoch);
    if (!node_status.ok()) {
      if (stats == nullptr) return node_status;
      // Degraded: impute the type (kTxn keeps the row flowing through the
      // transaction projections, matching its zeroed features).
      ++stats->imputed_node_types;
      type = graph::NodeType::kTxn;
    }
    batch.node_types[local] = static_cast<int32_t>(type);

    std::vector<float> feat;
    Status fs = ReadFeatures(global, &feat, epoch);
    if (fs.ok()) {
      XF_CHECK_EQ(static_cast<int64_t>(feat.size()), dim.value());
      std::copy(feat.begin(), feat.end(),
                batch.features.Row(static_cast<int64_t>(local)));
    } else if (!fs.IsNotFound()) {
      if (stats == nullptr) return fs;
      // Degraded: the row was zero-initialized; flag it and move on.
      ++stats->imputed_feature_rows;
    }

    Status as = ReadNeighbors(global, &neighbors, &etypes, epoch);
    if (!as.ok()) {
      if (stats == nullptr) return as;
      ++stats->failed_adjacency_reads;
      neighbors.clear();
      etypes.clear();
    }
    for (size_t i = 0; i < neighbors.size(); ++i) {
      auto it = sub.local_of.find(neighbors[i]);
      if (it == sub.local_of.end()) continue;
      sub.src.push_back(it->second);
      sub.dst.push_back(static_cast<int32_t>(local));
      sub.etypes.push_back(static_cast<graph::EdgeType>(etypes[i]));
      batch.edge_src.push_back(it->second);
      batch.edge_dst.push_back(static_cast<int32_t>(local));
      batch.edge_types.push_back(static_cast<int32_t>(etypes[i]));
    }
  }

  for (int32_t seed : seeds) {
    // A seed whose own record is unreadable fails the batch even in
    // degraded mode — there is nothing meaningful to score.
    graph::NodeType type;
    int8_t label;
    XF_RETURN_IF_ERROR(ReadNode(seed, &type, &label, epoch));
    batch.target_locals.push_back(sub.local_of.at(seed));
    batch.target_labels.push_back(label == graph::kLabelFraud ? 1 : 0);
  }
  return batch;
}

}  // namespace xfraud::kv
