#ifndef XFRAUD_KV_MEM_KV_H_
#define XFRAUD_KV_MEM_KV_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xfraud/kv/kvstore.h"

namespace xfraud::kv {

/// In-memory KV store guarded by one global mutex — the "single threaded
/// KVStore" of paper Figure 12. Readers serialize on the same lock as the
/// writer, which is exactly the loader bottleneck the paper eliminated by
/// moving to a multi-reader design (Figure 13 / ShardedKvStore here).
class MemKvStore : public KvStore {
 public:
  MemKvStore() = default;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_MEM_KV_H_
