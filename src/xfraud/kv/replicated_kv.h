#ifndef XFRAUD_KV_REPLICATED_KV_H_
#define XFRAUD_KV_REPLICATED_KV_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/kv/kvstore.h"
#include "xfraud/obs/metrics.h"

namespace xfraud::kv {

/// Per-replica circuit breaker: a rolling window of read outcomes; when the
/// error fraction over a full-enough window crosses the threshold the
/// breaker opens (reads skip the replica), and after `cooloff_s` a single
/// half-open probe decides whether to close it again. This is what keeps a
/// dead replica from charging every request a timeout before failover.
struct BreakerOptions {
  /// Rolling outcome window size; <= 0 disables the breaker entirely.
  int window = 16;
  /// Outcomes required in the window before the breaker may trip.
  int min_events = 8;
  /// Error fraction at or above which the breaker opens.
  double error_frac = 0.5;
  /// Seconds an open breaker waits before admitting a half-open probe.
  double cooloff_s = 0.05;

  bool enabled() const { return window > 0; }
};

struct ReplicationOptions {
  /// Hedged reads: when the primary replica's read takes longer than this,
  /// a backup read is issued to the next healthy replica and the faster
  /// (emulated) response wins. Negative disables hedging.
  double hedge_delay_s = -1.0;
  BreakerOptions breaker;
  /// Time source for latency measurement, breaker cool-offs, and the hedge
  /// decision; nullptr means Clock::Real().
  Clock* clock = nullptr;
};

/// Latency credit from hedge wins, accumulated per thread. The hedge is
/// emulated sequentially (see ReplicatedKvStore), so real elapsed time
/// includes the full slow primary read; a hedge win deposits the difference
/// between that and the latency a racing hedge would have delivered.
/// End-to-end latency accounting (the scoring service) subtracts the credit
/// so reported request latencies equal the true hedged behavior — on the
/// virtual and the real clock alike.
class HedgeRebate {
 public:
  /// Returns the credit accumulated on this thread since the last Take and
  /// resets it to zero.
  static double Take();

 private:
  friend class ReplicatedKvStore;
  static void Add(double seconds);
};

/// R-way replicated KvStore: every write goes to all replicas, reads try
/// the key's primary replica first and fail over across the rest — the
/// serving-side availability layer of the paper's KV topology (§3.3.3 /
/// Appendix C). Composes freely: replicas may be MemKvStore cells,
/// fault::FaultyKvStore decorators (chaos testing), or anything else, and a
/// ShardedKvStore can shard over several ReplicatedKvStores.
///
/// Read path per attempt: deadline check (DeadlineScope::Current) →
/// breaker admission → replica Get. NotFound is an authoritative answer
/// (the replicas hold identical data), so it does not fail over and counts
/// as a healthy outcome for the breaker. When every replica has failed or
/// been skipped, returns the last real error, or Unavailable if no replica
/// was even admitted.
///
/// Hedging is emulated deterministically: if the primary's read succeeded
/// but took longer than `hedge_delay_s`, one backup read is issued to the
/// next admitted replica, and the response whose emulated completion time
/// (hedge_delay + backup latency vs primary latency) is earlier wins. The
/// emulation runs the two reads sequentially — total *work* equals
/// primary + hedge, exactly like a real race that cannot cancel the loser —
/// and deposits any saving into HedgeRebate so end-to-end accounting sees
/// the raced latency. Single-threaded runs are bit-reproducible.
class ReplicatedKvStore : public KvStore {
 public:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// Non-owning: `replicas` must outlive this store (none null, at least
  /// one).
  ReplicatedKvStore(std::vector<KvStore*> replicas,
                    ReplicationOptions options);
  /// Owning variant.
  ReplicatedKvStore(std::vector<std::unique_ptr<KvStore>> replicas,
                    ReplicationOptions options);

  /// Convenience: R in-memory replicas.
  static std::unique_ptr<ReplicatedKvStore> InMemory(
      int num_replicas, ReplicationOptions options = {});

  /// Writes to every replica; returns the first error (replicas must not
  /// silently diverge, so a failed write surfaces even when others
  /// succeeded). Write outcomes feed the breakers but ignore them — a
  /// write is never skipped on an open breaker.
  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;

  /// Served from replica 0 (replicas hold identical data by contract).
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;

  /// Epoch-pinned read with the full failover/breaker/hedge machinery; the
  /// epoch is forwarded to whichever replica serves the attempt. Like
  /// NotFound, a FailedPrecondition ("epoch not readable here") is an
  /// authoritative answer — replicas hold identical histories, so it does
  /// not fail over.
  Status GetAt(std::string_view key, uint64_t epoch,
               std::string* value) const override;
  std::vector<std::string> KeysWithPrefixAt(std::string_view prefix,
                                            uint64_t epoch) const override;

  size_t num_replicas() const { return replicas_.size(); }
  BreakerState breaker_state(size_t replica) const;

 private:
  struct Breaker {
    mutable std::mutex mu;
    std::vector<uint8_t> outcomes;  // ring buffer: 1 = error
    size_t next = 0;
    int filled = 0;
    int errors = 0;
    BreakerState state = BreakerState::kClosed;
    double probe_at_s = 0.0;  // earliest half-open probe time when open
  };

  void Init();
  size_t PrimaryOf(std::string_view key) const;
  /// True when replica `r` may serve a read now; transitions an expired
  /// open breaker to half-open (the caller becomes the probe).
  bool AdmitRead(size_t r) const;
  void RecordOutcome(size_t r, bool healthy) const;
  Status GetOnce(size_t r, std::string_view key, uint64_t epoch,
                 std::string* value, double* latency_s) const;
  Status GetImpl(std::string_view key, uint64_t epoch,
                 std::string* value) const;

  std::vector<std::unique_ptr<KvStore>> owned_;
  std::vector<KvStore*> replicas_;
  ReplicationOptions options_;
  Clock* clock_;
  mutable std::vector<std::unique_ptr<Breaker>> breakers_;
  // Global-registry metrics (aggregated across instances, like retry/*).
  obs::Counter* reads_;
  obs::Counter* failovers_;
  obs::Counter* hedged_reads_;
  obs::Counter* hedge_wins_;
  obs::Counter* breaker_opens_;
  obs::Counter* breaker_closes_;
  obs::Counter* exhausted_;
  obs::Histogram* get_s_;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_REPLICATED_KV_H_
