#ifndef XFRAUD_KV_KVSTORE_H_
#define XFRAUD_KV_KVSTORE_H_

#include <string>
#include <string_view>
#include <vector>

#include "xfraud/common/status.h"

namespace xfraud::kv {

/// Sentinel epoch meaning "the latest published state plus any pending
/// writes" — the pre-MVCC read semantics. Versioned reads pass a real epoch
/// instead; unversioned stores only understand kHeadEpoch.
inline constexpr uint64_t kHeadEpoch = ~0ULL;

/// Key-value store interface backing the graph data loaders (paper §3.3.3 /
/// Appendix C: all graph-related information — node features, adjacency —
/// lives in a lightweight KV store so multiple loader threads can feed the
/// GNN workers).
///
/// RocksDB-style contract: all operations return Status; Get on a missing
/// key returns NotFound. Implementations must be safe for concurrent Get;
/// Put/Delete are single-writer.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Get(std::string_view key, std::string* value) const = 0;
  virtual Status Delete(std::string_view key) = 0;

  /// Number of live keys.
  virtual int64_t Count() const = 0;

  /// All live keys with the given prefix, in ascending byte order.
  virtual std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const = 0;

  /// Epoch-pinned read: the value `key` had as of published epoch `epoch`.
  /// kHeadEpoch means "latest" and is accepted everywhere. Stores without
  /// version history (MemKvStore, plain decorators over them) refuse any
  /// real epoch with FailedPrecondition — a loud failure instead of a
  /// silently mixed-epoch result.
  virtual Status GetAt(std::string_view key, uint64_t epoch,
                       std::string* value) const {
    if (epoch == kHeadEpoch) return Get(key, value);
    return Status::FailedPrecondition(
        "store is not versioned: cannot read at epoch " +
        std::to_string(epoch));
  }

  /// Epoch-pinned prefix scan; same contract as GetAt. Unversioned stores
  /// return an empty list for real epochs (scans cannot return Status, so
  /// callers needing a hard failure should probe GetAt first).
  virtual std::vector<std::string> KeysWithPrefixAt(std::string_view prefix,
                                                    uint64_t epoch) const {
    if (epoch == kHeadEpoch) return KeysWithPrefix(prefix);
    return {};
  }
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_KVSTORE_H_
