#ifndef XFRAUD_KV_KVSTORE_H_
#define XFRAUD_KV_KVSTORE_H_

#include <string>
#include <string_view>
#include <vector>

#include "xfraud/common/status.h"

namespace xfraud::kv {

/// Key-value store interface backing the graph data loaders (paper §3.3.3 /
/// Appendix C: all graph-related information — node features, adjacency —
/// lives in a lightweight KV store so multiple loader threads can feed the
/// GNN workers).
///
/// RocksDB-style contract: all operations return Status; Get on a missing
/// key returns NotFound. Implementations must be safe for concurrent Get;
/// Put/Delete are single-writer.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Get(std::string_view key, std::string* value) const = 0;
  virtual Status Delete(std::string_view key) = 0;

  /// Number of live keys.
  virtual int64_t Count() const = 0;

  /// All live keys with the given prefix, in ascending byte order.
  virtual std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const = 0;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_KVSTORE_H_
