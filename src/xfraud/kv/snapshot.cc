#include "xfraud/kv/snapshot.h"

#include "xfraud/obs/registry.h"

namespace xfraud::kv {

namespace {

struct SnapshotMetrics {
  obs::Counter* pins;
  obs::Counter* adj_cache_hits;
  obs::Counter* adj_cache_misses;

  static const SnapshotMetrics& Get() {
    static const SnapshotMetrics m = [] {
      auto& r = obs::Registry::Global();
      return SnapshotMetrics{r.counter("kv/snapshot/pins"),
                             r.counter("kv/snapshot/adj_cache_hits"),
                             r.counter("kv/snapshot/adj_cache_misses")};
    }();
    return m;
  }
};

}  // namespace

Result<SnapshotHandle> SnapshotHandle::Pin(EpochSource* source,
                                           uint64_t epoch) {
  XF_RETURN_IF_ERROR(source->PinEpoch(epoch));
  SnapshotMetrics::Get().pins->Increment();
  return SnapshotHandle(source, epoch);
}

Result<SnapshotHandle> SnapshotHandle::PinLatest(EpochSource* source) {
  const uint64_t epoch = source->published_epoch();
  if (epoch == 0) {
    return Status::FailedPrecondition("no epoch has been published yet");
  }
  return Pin(source, epoch);
}

bool AdjacencyCache::Lookup(uint64_t epoch, int64_t node,
                            std::string* value) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto eit = epochs_.find(epoch);
  if (eit == epochs_.end()) {
    SnapshotMetrics::Get().adj_cache_misses->Increment();
    return false;
  }
  auto nit = eit->second.find(node);
  if (nit == eit->second.end()) {
    SnapshotMetrics::Get().adj_cache_misses->Increment();
    return false;
  }
  *value = nit->second;
  SnapshotMetrics::Get().adj_cache_hits->Increment();
  return true;
}

void AdjacencyCache::Insert(uint64_t epoch, int64_t node, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  epochs_[epoch][node] = std::move(value);
}

void AdjacencyCache::EvictEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epochs_.erase(epoch);
}

int64_t AdjacencyCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [epoch, nodes] : epochs_) {
    total += static_cast<int64_t>(nodes.size());
  }
  return total;
}

}  // namespace xfraud::kv
