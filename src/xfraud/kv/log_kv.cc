#include "xfraud/kv/log_kv.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "xfraud/common/crc32.h"
#include "xfraud/common/logging.h"
#include "xfraud/kv/kv_metrics.h"

namespace xfraud::kv {

namespace {

constexpr uint8_t kKindPut = 1;
constexpr uint8_t kKindDelete = 2;
constexpr size_t kHeaderSize = 4 + 1 + 4 + 4;  // crc + kind + klen + vlen

void EncodeU32(char* out, uint32_t v) { std::memcpy(out, &v, 4); }
uint32_t DecodeU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}

}  // namespace

LogKvStore::LogKvStore(std::string path) : path_(std::move(path)) {}

Result<std::unique_ptr<LogKvStore>> LogKvStore::Open(const std::string& path) {
  // make_unique cannot reach the private ctor; ownership is taken on the
  // same line. xfraud-lint: allow(no-naked-new)
  std::unique_ptr<LogKvStore> store(new LogKvStore(path));
  // A crash mid-Compact can leave a stale "<path>.compact" behind (the
  // rename never happened, so the live log is still authoritative). Remove
  // it on open: it must never be replayed, and leaving it around would make
  // the next Compact start from a partially-written file.
  ::unlink((path + ".compact").c_str());
  store->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (store->fd_ < 0) {
    return Status::IoError("cannot open " + path);
  }
  struct stat st;
  if (::fstat(store->fd_, &st) != 0) {
    return Status::IoError("fstat failed on " + path);
  }
  store->file_size_ = st.st_size;
  Status s = store->ReplayLog();
  if (!s.ok()) return s;
  return store;
}

LogKvStore::~LogKvStore() {
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Status LogKvStore::RemapForRead() const {
  if (map_size_ == file_size_) return Status::OK();
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_size_);
    map_base_ = nullptr;
    map_size_ = 0;
  }
  if (file_size_ == 0) return Status::OK();
  void* base =
      ::mmap(nullptr, file_size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (base == MAP_FAILED) {
    return Status::IoError("mmap failed on " + path_);
  }
  map_base_ = static_cast<const char*>(base);
  map_size_ = file_size_;
  return Status::OK();
}

Status LogKvStore::ReplayLog() {
  std::unique_lock lock(mu_);
  index_.clear();
  XF_RETURN_IF_ERROR(RemapForRead());
  int64_t offset = 0;
  int64_t valid_end = 0;
  while (offset + static_cast<int64_t>(kHeaderSize) <= file_size_) {
    const char* rec = map_base_ + offset;
    uint32_t crc = DecodeU32(rec);
    uint8_t kind = static_cast<uint8_t>(rec[4]);
    uint32_t klen = DecodeU32(rec + 5);
    uint32_t vlen = DecodeU32(rec + 9);
    int64_t total = static_cast<int64_t>(kHeaderSize) + klen + vlen;
    if (offset + total > file_size_) break;  // truncated tail
    uint32_t actual = Crc32(rec + 4, kHeaderSize - 4 + klen + vlen);
    if (actual != crc) break;  // corrupt tail: stop replay (crash safety)
    std::string key(rec + kHeaderSize, klen);
    if (kind == kKindPut) {
      index_[key] = IndexEntry{offset + static_cast<int64_t>(kHeaderSize) +
                                   klen,
                               vlen};
    } else if (kind == kKindDelete) {
      index_.erase(key);
    } else {
      break;  // unknown record kind: treat as corruption
    }
    offset += total;
    valid_end = offset;
  }
  // Drop any corrupt/truncated tail so future appends start clean.
  if (valid_end < file_size_) {
    if (::ftruncate(fd_, valid_end) != 0) {
      return Status::IoError("ftruncate failed on " + path_);
    }
    file_size_ = valid_end;
    XF_RETURN_IF_ERROR(RemapForRead());
  }
  return Status::OK();
}

Status LogKvStore::AppendRecord(uint8_t kind, std::string_view key,
                                std::string_view value) {
  // Record framing stores lengths as u32; larger payloads would be silently
  // truncated on replay.
  XF_CHECK_LE(key.size(), UINT32_MAX);
  XF_CHECK_LE(value.size(), UINT32_MAX);
  size_t total = kHeaderSize + key.size() + value.size();
  std::string buf(total, '\0');
  buf[4] = static_cast<char>(kind);
  EncodeU32(buf.data() + 5, static_cast<uint32_t>(key.size()));
  EncodeU32(buf.data() + 9, static_cast<uint32_t>(value.size()));
  std::memcpy(buf.data() + kHeaderSize, key.data(), key.size());
  std::memcpy(buf.data() + kHeaderSize + key.size(), value.data(),
              value.size());
  uint32_t crc = Crc32(buf.data() + 4, total - 4);
  EncodeU32(buf.data(), crc);

  ssize_t written = ::pwrite(fd_, buf.data(), total, file_size_);
  if (written != static_cast<ssize_t>(total)) {
    return Status::IoError("short write on " + path_);
  }
  file_size_ += static_cast<int64_t>(total);
  return Status::OK();
}

Status LogKvStore::Put(std::string_view key, std::string_view value) {
  const KvMetrics& metrics = KvMetrics::Get();
  std::unique_lock lock(mu_);
  int64_t value_offset = file_size_ + static_cast<int64_t>(kHeaderSize) +
                         static_cast<int64_t>(key.size());
  XF_RETURN_IF_ERROR(AppendRecord(kKindPut, key, value));
  index_[std::string(key)] =
      IndexEntry{value_offset, static_cast<uint32_t>(value.size())};
  XF_RETURN_IF_ERROR(RemapForRead());
  metrics.put_ops->Increment();
  metrics.bytes_written->Add(
      static_cast<int64_t>(kHeaderSize + key.size() + value.size()));
  return Status::OK();
}

Status LogKvStore::Get(std::string_view key, std::string* value) const {
  const KvMetrics& metrics = KvMetrics::Get();
  std::shared_lock lock(mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    metrics.get_misses->Increment();
    return Status::NotFound("key: " + std::string(key));
  }
  const IndexEntry& entry = it->second;
  XF_CHECK_LE(entry.value_offset + entry.value_size, map_size_);
  value->assign(map_base_ + entry.value_offset, entry.value_size);
  metrics.get_hits->Increment();
  metrics.bytes_read->Add(static_cast<int64_t>(entry.value_size));
  return Status::OK();
}

Status LogKvStore::Delete(std::string_view key) {
  std::unique_lock lock(mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::OK();  // idempotent
  XF_RETURN_IF_ERROR(AppendRecord(kKindDelete, key, ""));
  index_.erase(it);
  XF_RETURN_IF_ERROR(RemapForRead());
  return Status::OK();
}

int64_t LogKvStore::Count() const {
  std::shared_lock lock(mu_);
  return static_cast<int64_t>(index_.size());
}

std::vector<std::string> LogKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  // Order-insensitive hash-map walk: the matches are sorted below, so the
  // iteration order never reaches the caller.
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, entry] : index_) {
    if (key.size() >= prefix.size() &&
        std::string_view(key).substr(0, prefix.size()) == prefix) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<int64_t> LogKvStore::Compact() {
  std::unique_lock lock(mu_);
  std::string tmp_path = path_ + ".compact";
  int tmp_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return Status::IoError("cannot open " + tmp_path);

  int64_t old_size = file_size_;
  int64_t new_size = 0;
  std::unordered_map<std::string, IndexEntry> new_index;
  // Compact in ascending key order, not hash order: the compacted image's
  // byte layout becomes a pure function of the live contents, so two
  // stores holding the same state — e.g. a replica pair, or the same run
  // replayed on a different stdlib — emit byte-identical logs. The
  // collection loop itself is order-insensitive (sorted below).
  std::vector<std::pair<std::string_view, const IndexEntry*>> live;
  live.reserve(index_.size());
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, entry] : index_) live.emplace_back(key, &entry);
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, entry_ptr] : live) {
    const IndexEntry& entry = *entry_ptr;
    size_t total = kHeaderSize + key.size() + entry.value_size;
    std::string buf(total, '\0');
    buf[4] = static_cast<char>(kKindPut);
    EncodeU32(buf.data() + 5, static_cast<uint32_t>(key.size()));
    EncodeU32(buf.data() + 9, entry.value_size);
    std::memcpy(buf.data() + kHeaderSize, key.data(), key.size());
    std::memcpy(buf.data() + kHeaderSize + key.size(),
                map_base_ + entry.value_offset, entry.value_size);
    EncodeU32(buf.data(), Crc32(buf.data() + 4, total - 4));
    if (::pwrite(tmp_fd, buf.data(), total, new_size) !=
        static_cast<ssize_t>(total)) {
      ::close(tmp_fd);
      return Status::IoError("short write on " + tmp_path);
    }
    new_index[std::string(key)] =
        IndexEntry{new_size + static_cast<int64_t>(kHeaderSize) +
                       static_cast<int64_t>(key.size()),
                   entry.value_size};
    new_size += static_cast<int64_t>(total);
  }

  // Make the compacted image durable before the rename publishes it; a
  // crash between rename and a later fsync could otherwise surface a
  // zero-length "compacted" log.
  if (::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    return Status::IoError("fsync failed on " + tmp_path);
  }
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(tmp_fd);
    return Status::IoError("rename failed for " + tmp_path);
  }
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_size_);
    map_base_ = nullptr;
    map_size_ = 0;
  }
  ::close(fd_);
  fd_ = tmp_fd;
  file_size_ = new_size;
  index_ = std::move(new_index);
  XF_RETURN_IF_ERROR(RemapForRead());
  return old_size - new_size;
}

int64_t LogKvStore::FileSize() const {
  std::shared_lock lock(mu_);
  return file_size_;
}

}  // namespace xfraud::kv
