#include "xfraud/kv/log_kv.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "xfraud/common/crc32.h"
#include "xfraud/common/logging.h"
#include "xfraud/kv/kv_metrics.h"

namespace xfraud::kv {

namespace {

constexpr uint8_t kKindPut = 1;
constexpr uint8_t kKindDelete = 2;
constexpr uint8_t kKindEpoch = 3;  // commit marker: klen 0, value LE64 epoch
constexpr uint8_t kKindFloor = 4;  // GC floor: klen 0, value LE64 epoch
constexpr size_t kHeaderSize = 4 + 1 + 4 + 4;  // crc + kind + klen + vlen

void EncodeU32(char* out, uint32_t v) { std::memcpy(out, &v, 4); }
uint32_t DecodeU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
void EncodeU64(char* out, uint64_t v) { std::memcpy(out, &v, 8); }
uint64_t DecodeU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

}  // namespace

LogKvStore::LogKvStore(std::string path) : path_(std::move(path)) {}

Result<std::unique_ptr<LogKvStore>> LogKvStore::Open(const std::string& path) {
  // make_unique cannot reach the private ctor; ownership is taken on the
  // same line. xfraud-lint: allow(no-naked-new)
  std::unique_ptr<LogKvStore> store(new LogKvStore(path));
  // A crash mid-Compact can leave a stale "<path>.compact" behind (the
  // rename never happened, so the live log is still authoritative). Remove
  // it on open: it must never be replayed, and leaving it around would make
  // the next Compact start from a partially-written file.
  ::unlink((path + ".compact").c_str());
  store->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (store->fd_ < 0) {
    return Status::IoError("cannot open " + path);
  }
  struct stat st;
  if (::fstat(store->fd_, &st) != 0) {
    return Status::IoError("fstat failed on " + path);
  }
  store->file_size_ = st.st_size;
  // No lock needed: the store is not shared until Open returns. Note that
  // replay keeps any uncommitted pending-epoch tail — rolling it back is an
  // explicit policy decision (DiscardPending, e.g. on ingestor reattach),
  // never something Open does silently.
  Status s = store->ReplayLog();
  if (!s.ok()) return s;
  return store;
}

LogKvStore::~LogKvStore() {
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Status LogKvStore::RemapForRead() const {
  if (map_size_ == file_size_) return Status::OK();
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_size_);
    map_base_ = nullptr;
    map_size_ = 0;
  }
  if (file_size_ == 0) return Status::OK();
  void* base =
      ::mmap(nullptr, file_size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (base == MAP_FAILED) {
    return Status::IoError("mmap failed on " + path_);
  }
  map_base_ = static_cast<const char*>(base);
  map_size_ = file_size_;
  return Status::OK();
}

Status LogKvStore::ReplayLog() {
  index_.clear();
  published_ = 0;
  published_end_ = 0;
  floor_ = 0;
  XF_RETURN_IF_ERROR(RemapForRead());
  int64_t offset = 0;
  int64_t valid_end = 0;
  while (offset + static_cast<int64_t>(kHeaderSize) <= file_size_) {
    const char* rec = map_base_ + offset;
    uint32_t crc = DecodeU32(rec);
    uint8_t kind = static_cast<uint8_t>(rec[4]);
    uint32_t klen = DecodeU32(rec + 5);
    uint32_t vlen = DecodeU32(rec + 9);
    int64_t total = static_cast<int64_t>(kHeaderSize) + klen + vlen;
    if (offset + total > file_size_) break;  // truncated tail
    uint32_t actual = Crc32(rec + 4, kHeaderSize - 4 + klen + vlen);
    if (actual != crc) break;  // corrupt tail: stop replay (crash safety)
    std::string key(rec + kHeaderSize, klen);
    const int64_t value_offset =
        offset + static_cast<int64_t>(kHeaderSize) + klen;
    if (kind == kKindPut) {
      UpsertPending(key, Version{published_ + 1, value_offset, vlen});
    } else if (kind == kKindDelete) {
      UpsertPending(key, Version{published_ + 1, -1, 0});
    } else if (kind == kKindEpoch) {
      // A marker commits exactly the next epoch; anything else means the
      // log was torn or tampered with — stop replay there.
      if (klen != 0 || vlen != 8) break;
      if (DecodeU64(rec + kHeaderSize) != published_ + 1) break;
      ++published_;
      published_end_ = offset + total;
    } else if (kind == kKindFloor) {
      if (klen != 0 || vlen != 8) break;
      floor_ = DecodeU64(rec + kHeaderSize);
    } else {
      break;  // unknown record kind: treat as corruption
    }
    offset += total;
    valid_end = offset;
  }
  // Drop any corrupt/truncated tail so future appends start clean.
  if (valid_end < file_size_) {
    if (::ftruncate(fd_, valid_end) != 0) {
      return Status::IoError("ftruncate failed on " + path_);
    }
    file_size_ = valid_end;
    XF_RETURN_IF_ERROR(RemapForRead());
  }
  return Status::OK();
}

void LogKvStore::UpsertPending(const std::string& key, Version v) {
  std::vector<Version>& chain = index_[key];
  if (!chain.empty() && chain.back().epoch == v.epoch) {
    chain.back() = v;  // rewrite within the open epoch replaces in place
  } else {
    chain.push_back(v);
  }
}

bool LogKvStore::VisibleAt(const Version& v, uint64_t epoch) const {
  if (v.epoch > epoch) return false;
  return ttl_epochs_ == 0 || epoch - v.epoch < ttl_epochs_;
}

const LogKvStore::Version* LogKvStore::ResolveAt(
    const std::vector<Version>& chain, uint64_t epoch) const {
  // Latest version at or below the read epoch wins; if it is a tombstone
  // or TTL-expired the key is absent at that epoch (older versions are
  // shadowed, never resurrected).
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it->epoch > epoch) continue;
    if (it->tombstone() || !VisibleAt(*it, epoch)) return nullptr;
    return &*it;
  }
  return nullptr;
}

Status LogKvStore::AppendRecord(uint8_t kind, std::string_view key,
                                std::string_view value) {
  // Record framing stores lengths as u32; larger payloads would be silently
  // truncated on replay.
  XF_CHECK_LE(key.size(), UINT32_MAX);
  XF_CHECK_LE(value.size(), UINT32_MAX);
  size_t total = kHeaderSize + key.size() + value.size();
  std::string buf(total, '\0');
  buf[4] = static_cast<char>(kind);
  EncodeU32(buf.data() + 5, static_cast<uint32_t>(key.size()));
  EncodeU32(buf.data() + 9, static_cast<uint32_t>(value.size()));
  std::memcpy(buf.data() + kHeaderSize, key.data(), key.size());
  std::memcpy(buf.data() + kHeaderSize + key.size(), value.data(),
              value.size());
  uint32_t crc = Crc32(buf.data() + 4, total - 4);
  EncodeU32(buf.data(), crc);

  ssize_t written = ::pwrite(fd_, buf.data(), total, file_size_);
  if (written != static_cast<ssize_t>(total)) {
    return Status::IoError("short write on " + path_);
  }
  file_size_ += static_cast<int64_t>(total);
  return Status::OK();
}

Status LogKvStore::Put(std::string_view key, std::string_view value) {
  const KvMetrics& metrics = KvMetrics::Get();
  std::unique_lock lock(mu_);
  int64_t value_offset = file_size_ + static_cast<int64_t>(kHeaderSize) +
                         static_cast<int64_t>(key.size());
  XF_RETURN_IF_ERROR(AppendRecord(kKindPut, key, value));
  UpsertPending(std::string(key),
                Version{head_epoch_locked(), value_offset,
                        static_cast<uint32_t>(value.size())});
  XF_RETURN_IF_ERROR(RemapForRead());
  metrics.put_ops->Increment();
  metrics.bytes_written->Add(
      static_cast<int64_t>(kHeaderSize + key.size() + value.size()));
  return Status::OK();
}

Status LogKvStore::Get(std::string_view key, std::string* value) const {
  const KvMetrics& metrics = KvMetrics::Get();
  std::shared_lock lock(mu_);
  auto it = index_.find(std::string(key));
  const Version* v = it == index_.end()
                         ? nullptr
                         : ResolveAt(it->second, head_epoch_locked());
  if (v == nullptr) {
    metrics.get_misses->Increment();
    return Status::NotFound("key: " + std::string(key));
  }
  XF_CHECK_LE(v->value_offset + v->value_size, map_size_);
  value->assign(map_base_ + v->value_offset, v->value_size);
  metrics.get_hits->Increment();
  metrics.bytes_read->Add(static_cast<int64_t>(v->value_size));
  return Status::OK();
}

Status LogKvStore::GetAt(std::string_view key, uint64_t epoch,
                         std::string* value) const {
  if (epoch == kHeadEpoch) return Get(key, value);
  const KvMetrics& metrics = KvMetrics::Get();
  std::shared_lock lock(mu_);
  if (epoch == 0 || epoch > published_) {
    return Status::FailedPrecondition(
        "epoch " + std::to_string(epoch) + " is not published (head is " +
        std::to_string(published_) + ")");
  }
  if (epoch < earliest_locked()) {
    return Status::FailedPrecondition(
        "epoch " + std::to_string(epoch) + " was compacted away (floor " +
        std::to_string(earliest_locked()) + ")");
  }
  auto it = index_.find(std::string(key));
  const Version* v =
      it == index_.end() ? nullptr : ResolveAt(it->second, epoch);
  if (v == nullptr) {
    metrics.get_misses->Increment();
    return Status::NotFound("key: " + std::string(key) + " at epoch " +
                            std::to_string(epoch));
  }
  XF_CHECK_LE(v->value_offset + v->value_size, map_size_);
  value->assign(map_base_ + v->value_offset, v->value_size);
  metrics.get_hits->Increment();
  metrics.bytes_read->Add(static_cast<int64_t>(v->value_size));
  return Status::OK();
}

Status LogKvStore::Delete(std::string_view key) {
  std::unique_lock lock(mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end() ||
      ResolveAt(it->second, head_epoch_locked()) == nullptr) {
    return Status::OK();  // idempotent: nothing visible to delete
  }
  XF_RETURN_IF_ERROR(AppendRecord(kKindDelete, key, ""));
  UpsertPending(std::string(key), Version{head_epoch_locked(), -1, 0});
  XF_RETURN_IF_ERROR(RemapForRead());
  return Status::OK();
}

int64_t LogKvStore::Count() const {
  std::shared_lock lock(mu_);
  int64_t live = 0;
  // Order-insensitive hash-map walk: counting only.
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, chain] : index_) {
    if (ResolveAt(chain, head_epoch_locked()) != nullptr) ++live;
  }
  return live;
}

std::vector<std::string> LogKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  // Order-insensitive hash-map walk: the matches are sorted below, so the
  // iteration order never reaches the caller.
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, chain] : index_) {
    if (key.size() >= prefix.size() &&
        std::string_view(key).substr(0, prefix.size()) == prefix &&
        ResolveAt(chain, head_epoch_locked()) != nullptr) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> LogKvStore::KeysWithPrefixAt(std::string_view prefix,
                                                      uint64_t epoch) const {
  if (epoch == kHeadEpoch) return KeysWithPrefix(prefix);
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  if (epoch == 0 || epoch > published_ || epoch < earliest_locked()) {
    return out;  // unreadable epoch: callers probe GetAt for the Status
  }
  // Order-insensitive hash-map walk, sorted below.
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, chain] : index_) {
    if (key.size() >= prefix.size() &&
        std::string_view(key).substr(0, prefix.size()) == prefix &&
        ResolveAt(chain, epoch) != nullptr) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<uint64_t> LogKvStore::PublishEpoch() {
  std::unique_lock lock(mu_);
  const uint64_t next = published_ + 1;
  char buf[8];
  EncodeU64(buf, next);
  XF_RETURN_IF_ERROR(AppendRecord(kKindEpoch, "", std::string_view(buf, 8)));
  // The marker + fsync IS the commit: before this returns OK the epoch does
  // not exist (replay stops at the previous marker); after it returns OK
  // the epoch can never be lost to a crash.
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync failed on " + path_);
  }
  published_ = next;
  published_end_ = file_size_;
  XF_RETURN_IF_ERROR(RemapForRead());
  return next;
}

uint64_t LogKvStore::published_epoch() const {
  std::shared_lock lock(mu_);
  return published_;
}

Status LogKvStore::PinEpoch(uint64_t epoch) {
  std::unique_lock lock(mu_);
  if (epoch == 0 || epoch == kHeadEpoch) {
    return Status::InvalidArgument("cannot pin epoch " +
                                   std::to_string(epoch));
  }
  if (epoch > published_) {
    return Status::FailedPrecondition(
        "cannot pin unpublished epoch " + std::to_string(epoch) +
        " (published " + std::to_string(published_) + ")");
  }
  if (epoch < earliest_locked()) {
    return Status::FailedPrecondition(
        "epoch " + std::to_string(epoch) + " was compacted away (floor " +
        std::to_string(earliest_locked()) + ")");
  }
  ++pins_[epoch];
  return Status::OK();
}

void LogKvStore::UnpinEpoch(uint64_t epoch) {
  std::unique_lock lock(mu_);
  auto it = pins_.find(epoch);
  XF_CHECK(it != pins_.end()) << "unpin of never-pinned epoch " << epoch;
  if (--it->second == 0) pins_.erase(it);
}

Status LogKvStore::DiscardPending() {
  std::unique_lock lock(mu_);
  if (file_size_ == published_end_) return Status::OK();
  if (::ftruncate(fd_, published_end_) != 0) {
    return Status::IoError("ftruncate failed on " + path_);
  }
  file_size_ = published_end_;
  // Rebuild the index from the truncated log: cheap relative to how rarely
  // an ingestor reattaches, and obviously equivalent to a crash + reopen.
  return ReplayLog();
}

void LogKvStore::SetTtlEpochs(uint64_t ttl) {
  std::unique_lock lock(mu_);
  ttl_epochs_ = ttl;
}

uint64_t LogKvStore::earliest_epoch() const {
  std::shared_lock lock(mu_);
  return earliest_locked();
}

void LogKvStore::SetCompactionHook(std::function<void(int)> hook) {
  std::unique_lock lock(mu_);
  compaction_hook_ = std::move(hook);
}

Result<int64_t> LogKvStore::Compact() {
  std::unique_lock lock(mu_);
  std::string tmp_path = path_ + ".compact";
  int tmp_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return Status::IoError("cannot open " + tmp_path);

  // GC floor: nothing at or below it is pinned except the floor itself, so
  // per key only the latest floor-visible version survives from below; every
  // version above the floor (including the uncommitted pending tail) is
  // preserved verbatim.
  uint64_t floor = published_;
  if (!pins_.empty()) floor = std::min(floor, pins_.begin()->first);

  struct Slot {
    std::string_view key;
    const Version* v;
  };
  // One bucket per epoch segment 1..published_+1 (index 0 unused): kept
  // versions are rewritten into their ORIGINAL epoch segment, between the
  // preserved commit markers, so every readable epoch — and the TTL
  // arithmetic that depends on write epochs — is bit-identical across
  // compaction.
  std::vector<std::vector<Slot>> segments(published_ + 2);
  // The collection loop itself is order-insensitive (each segment is sorted
  // by key below, making the image a pure function of retained state).
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, chain] : index_) {
    const Version* below = nullptr;  // latest version at or below the floor
    std::vector<const Version*> retained;
    for (const Version& v : chain) {
      if (v.epoch <= floor) {
        below = &v;
      } else {
        retained.push_back(&v);
      }
    }
    if (below != nullptr && !below->tombstone() && VisibleAt(*below, floor)) {
      retained.insert(retained.begin(), below);
    }
    // Leading tombstones shadow nothing retained — drop them (this is what
    // reclaims deleted keys once no pin can see their values).
    size_t start = 0;
    while (start < retained.size() && retained[start]->tombstone()) ++start;
    for (size_t i = start; i < retained.size(); ++i) {
      segments[retained[i]->epoch].push_back(Slot{key, retained[i]});
    }
  }

  int64_t old_size = file_size_;
  int64_t new_size = 0;
  int64_t new_published_end = 0;
  std::unordered_map<std::string, std::vector<Version>> new_index;

  auto write_record = [&](uint8_t kind, std::string_view key,
                          std::string_view value) -> Status {
    size_t total = kHeaderSize + key.size() + value.size();
    std::string buf(total, '\0');
    buf[4] = static_cast<char>(kind);
    EncodeU32(buf.data() + 5, static_cast<uint32_t>(key.size()));
    EncodeU32(buf.data() + 9, static_cast<uint32_t>(value.size()));
    std::memcpy(buf.data() + kHeaderSize, key.data(), key.size());
    std::memcpy(buf.data() + kHeaderSize + key.size(), value.data(),
                value.size());
    EncodeU32(buf.data(), Crc32(buf.data() + 4, total - 4));
    if (::pwrite(tmp_fd, buf.data(), total, new_size) !=
        static_cast<ssize_t>(total)) {
      return Status::IoError("short write on " + tmp_path);
    }
    new_size += static_cast<int64_t>(total);
    return Status::OK();
  };
  auto fail = [&](Status s) -> Result<int64_t> {
    ::close(tmp_fd);
    return s;
  };

  // A floor above 1 must survive reopen (readers below it would otherwise
  // see a silently collapsed history); at or below 1 no record is written,
  // which keeps never-pinned single-epoch stores' images byte-identical to
  // the pre-MVCC layout.
  if (floor > 1) {
    char buf[8];
    EncodeU64(buf, floor);
    Status s = write_record(kKindFloor, "", std::string_view(buf, 8));
    if (!s.ok()) return fail(std::move(s));
  }
  for (uint64_t e = 1; e <= published_ + 1; ++e) {
    std::vector<Slot>& seg = segments[e];
    std::sort(seg.begin(), seg.end(), [](const Slot& a, const Slot& b) {
      return a.key < b.key;
    });
    for (const Slot& slot : seg) {
      if (slot.v->tombstone()) {
        Status s = write_record(kKindDelete, slot.key, "");
        if (!s.ok()) return fail(std::move(s));
        new_index[std::string(slot.key)].push_back(Version{e, -1, 0});
      } else {
        int64_t value_offset = new_size + static_cast<int64_t>(kHeaderSize) +
                               static_cast<int64_t>(slot.key.size());
        Status s = write_record(
            kKindPut, slot.key,
            std::string_view(map_base_ + slot.v->value_offset,
                             slot.v->value_size));
        if (!s.ok()) return fail(std::move(s));
        new_index[std::string(slot.key)].push_back(
            Version{e, value_offset, slot.v->value_size});
      }
    }
    // Commit markers for every published epoch are preserved (replay
    // validates consecutive numbering); the pending segment, if any, stays
    // uncommitted — no trailing marker.
    if (e <= published_) {
      char buf[8];
      EncodeU64(buf, e);
      Status s = write_record(kKindEpoch, "", std::string_view(buf, 8));
      if (!s.ok()) return fail(std::move(s));
      new_published_end = new_size;
    }
  }

  if (compaction_hook_) compaction_hook_(0);
  // Make the compacted image durable before the rename publishes it; a
  // crash between rename and a later fsync could otherwise surface a
  // zero-length "compacted" log.
  if (::fsync(tmp_fd) != 0) {
    return fail(Status::IoError("fsync failed on " + tmp_path));
  }
  if (compaction_hook_) compaction_hook_(1);
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return fail(Status::IoError("rename failed for " + tmp_path));
  }
  if (compaction_hook_) compaction_hook_(2);
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_size_);
    map_base_ = nullptr;
    map_size_ = 0;
  }
  ::close(fd_);
  fd_ = tmp_fd;
  file_size_ = new_size;
  published_end_ = new_published_end;
  if (floor > 1) floor_ = floor;
  index_ = std::move(new_index);
  XF_RETURN_IF_ERROR(RemapForRead());
  return old_size - new_size;
}

int64_t LogKvStore::FileSize() const {
  std::shared_lock lock(mu_);
  return file_size_;
}

}  // namespace xfraud::kv
