#ifndef XFRAUD_KV_LOG_KV_H_
#define XFRAUD_KV_LOG_KV_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xfraud/kv/kvstore.h"

namespace xfraud::kv {

/// A persistent, log-structured KV store — the reproduction's LMDB stand-in
/// (paper §3.3.3). Writes append CRC-protected records to a segment file;
/// an in-memory index maps live keys to their latest record. Reads go
/// through a read-only mmap of the segment, so — like LMDB — concurrent
/// readers touch shared, immutable pages and scale with threads (the
/// property Figure 13's multi-threaded loader exploits).
///
/// Record layout (little endian):
///   u32 crc (over the rest) | u8 kind (1=put, 2=del) | u32 klen | u32 vlen
///   | key bytes | value bytes
///
/// Open() replays the log and stops at the first corrupt/truncated record
/// (crash-safe append semantics). Compact() rewrites live records only.
class LogKvStore : public KvStore {
 public:
  /// Opens (creating if needed) the store backed by `path`.
  static Result<std::unique_ptr<LogKvStore>> Open(const std::string& path);

  ~LogKvStore() override;

  LogKvStore(const LogKvStore&) = delete;
  LogKvStore& operator=(const LogKvStore&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;

  /// Rewrites the segment with live records only; returns bytes reclaimed.
  Result<int64_t> Compact();

  /// Current segment size in bytes (live + garbage).
  int64_t FileSize() const;

 private:
  explicit LogKvStore(std::string path);

  Status ReplayLog();
  Status AppendRecord(uint8_t kind, std::string_view key,
                      std::string_view value);
  Status RemapForRead() const;

  struct IndexEntry {
    int64_t value_offset;  // offset of the value bytes in the file
    uint32_t value_size;
  };

  std::string path_;
  int fd_ = -1;
  int64_t file_size_ = 0;

  mutable std::shared_mutex mu_;  // index guard: shared Get, exclusive Put
  std::unordered_map<std::string, IndexEntry> index_;

  // Read-only mapping of the segment; remapped when the file grows.
  mutable const char* map_base_ = nullptr;
  mutable int64_t map_size_ = 0;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_LOG_KV_H_
