#ifndef XFRAUD_KV_LOG_KV_H_
#define XFRAUD_KV_LOG_KV_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xfraud/kv/kvstore.h"
#include "xfraud/kv/snapshot.h"

namespace xfraud::kv {

/// A persistent, log-structured KV store — the reproduction's LMDB stand-in
/// (paper §3.3.3), now with MVCC epochs (DESIGN.md §15). Writes append
/// CRC-protected records to a segment file; an in-memory index maps each key
/// to its version chain. Reads go through a read-only mmap of the segment,
/// so — like LMDB — concurrent readers touch shared, immutable pages and
/// scale with threads (the property Figure 13's multi-threaded loader
/// exploits).
///
/// Record layout (little endian):
///   u32 crc (over the rest) | u8 kind | u32 klen | u32 vlen
///   | key bytes | value bytes
/// Kinds: 1=put, 2=delete, 3=epoch-commit marker (klen 0, value = LE64
/// epoch number, which replay validates against the marker count — a marker
/// can never be half-believed), 4=GC floor (klen 0, value = LE64 floor
/// epoch; written only by Compact, only when the floor exceeds 1).
///
/// Epoch model: writes land in the *pending* epoch (published + 1), durable
/// in the WAL immediately but committed only by PublishEpoch (marker +
/// fsync). Head reads (Get/KeysWithPrefix/Count) see published + pending;
/// GetAt/KeysWithPrefixAt see exactly one published epoch. PinEpoch holds
/// an epoch against TTL expiry and compaction; DiscardPending rolls the
/// uncommitted tail back (crash-recovery on ingestor reattach).
///
/// Open() replays the log and stops at the first corrupt/truncated record,
/// truncating the torn tail (crash-safe append semantics). Compact()
/// garbage-collects versions below the GC floor = min(pins, published),
/// preserving each surviving version in its original epoch segment so every
/// readable epoch is bit-identical across compaction.
class LogKvStore : public KvStore, public EpochSource {
 public:
  /// Opens (creating if needed) the store backed by `path`.
  static Result<std::unique_ptr<LogKvStore>> Open(const std::string& path);

  ~LogKvStore() override;

  LogKvStore(const LogKvStore&) = delete;
  LogKvStore& operator=(const LogKvStore&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;
  Status GetAt(std::string_view key, uint64_t epoch,
               std::string* value) const override;
  std::vector<std::string> KeysWithPrefixAt(std::string_view prefix,
                                            uint64_t epoch) const override;

  // EpochSource:
  Result<uint64_t> PublishEpoch() override;
  uint64_t published_epoch() const override;
  Status PinEpoch(uint64_t epoch) override;
  void UnpinEpoch(uint64_t epoch) override;
  Status DiscardPending() override;

  /// Garbage-collects versions below the GC floor and rewrites the segment;
  /// returns bytes reclaimed. Crash-safe: the new image is fsynced before an
  /// atomic rename publishes it, so SIGKILL at any instant leaves either the
  /// old or the new image — never a half-published epoch.
  Result<int64_t> Compact() override;

  /// Read-time TTL in epochs (0 = keep forever). A version written at epoch
  /// e is visible at read epoch E iff E - e < ttl; head reads use
  /// E = published + 1 (the open epoch). Purely a visibility rule — expiry
  /// is monotone in E, so compaction can reclaim expired versions without
  /// coordinating with readers beyond the pin floor.
  void SetTtlEpochs(uint64_t ttl);

  /// Earliest epoch still readable (compaction floor; 1 on a fresh log).
  uint64_t earliest_epoch() const;

  /// Current segment size in bytes (live + garbage).
  int64_t FileSize() const;

  /// Test hook: called inside Compact at phase 0 (image written, not yet
  /// fsynced), 1 (fsynced, not yet renamed), 2 (renamed). The SIGKILL
  /// crash-window tests park a self-kill here.
  void SetCompactionHook(std::function<void(int)> hook);

 private:
  explicit LogKvStore(std::string path);

  /// One entry in a key's version chain, ascending by epoch, at most one
  /// per (key, epoch) — a rewrite within the open epoch replaces in place,
  /// which keeps single-epoch (legacy) stores compacting exactly as before.
  struct Version {
    uint64_t epoch;
    int64_t value_offset;  // offset of the value bytes; -1 = tombstone
    uint32_t value_size;
    bool tombstone() const { return value_offset < 0; }
  };

  Status ReplayLog();
  Status AppendRecord(uint8_t kind, std::string_view key,
                      std::string_view value);
  Status RemapForRead() const;
  /// Records `v` as the pending-epoch version of `key` (replace-in-place
  /// within the open epoch).
  void UpsertPending(const std::string& key, Version v);
  /// TTL + epoch-order visibility of one version at read epoch `epoch`.
  bool VisibleAt(const Version& v, uint64_t epoch) const;
  /// Latest version of `chain` visible at `epoch`; nullptr if none (or the
  /// winner is a tombstone / TTL-expired).
  const Version* ResolveAt(const std::vector<Version>& chain,
                           uint64_t epoch) const;
  uint64_t head_epoch_locked() const { return published_ + 1; }
  uint64_t earliest_locked() const { return floor_ == 0 ? 1 : floor_; }

  std::string path_;
  int fd_ = -1;
  int64_t file_size_ = 0;

  mutable std::shared_mutex mu_;  // index guard: shared Get, exclusive Put
  std::unordered_map<std::string, std::vector<Version>> index_;

  uint64_t published_ = 0;      // committed epochs (= markers in the log)
  int64_t published_end_ = 0;   // file offset just past the last marker
  uint64_t floor_ = 0;          // GC floor from a kind-4 record (0 = none)
  uint64_t ttl_epochs_ = 0;     // 0 = no expiry
  std::map<uint64_t, int> pins_;  // epoch -> live pin count

  std::function<void(int)> compaction_hook_;

  // Read-only mapping of the segment; remapped when the file grows.
  mutable const char* map_base_ = nullptr;
  mutable int64_t map_size_ = 0;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_LOG_KV_H_
