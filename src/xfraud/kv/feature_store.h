#ifndef XFRAUD_KV_FEATURE_STORE_H_
#define XFRAUD_KV_FEATURE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xfraud/common/retry.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/mini_batch.h"
#include "xfraud/kv/kvstore.h"
#include "xfraud/kv/snapshot.h"

namespace xfraud::kv {

/// Serves graph data (node metadata, features, adjacency) out of a KvStore —
/// the data-loading path of paper §3.3.3: the graph is ingested once, then
/// every DDP worker's loader materializes its mini-batches by KV reads
/// instead of holding the whole graph in memory.
///
/// Key schema:
///   "m"          -> {num_nodes: i64, feature_dim: i64}
///   "n<id>"      -> {type: u8, label: i8, has_features: u8}
///   "f<id>"      -> float[feature_dim] (transaction nodes only)
///   "a<id>"      -> (i32 neighbor, u8 edge_type)[in_degree]
class FeatureStore {
 public:
  /// Wraps (not owning) a KvStore.
  explicit FeatureStore(KvStore* store) : store_(store) {}

  /// Configures retry-with-backoff for every read this store issues. The
  /// default policy performs a single attempt (no behavior change); set
  /// `max_attempts > 1` to ride out transient IoError/Corruption from the
  /// backing store (the expected failure mode of the paper's networked KV
  /// serving path). Not thread-safe against concurrent reads — configure
  /// before handing the store to loader threads.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Optional per-epoch adjacency cache shared with other readers of the
  /// same backing store. Only epoch-pinned reads consult it — adjacency is
  /// immutable within a published epoch, while the head mutates under
  /// writers. Not thread-safe against concurrent reads — configure before
  /// handing the store to loader threads. The cache must outlive this store.
  void set_adjacency_cache(AdjacencyCache* cache) { adj_cache_ = cache; }

  /// Writes the whole graph into the store.
  Status Ingest(const graph::HeteroGraph& g);

  /// Point reads take an optional pinned epoch (default: head). The epoch
  /// is forwarded to the backing store's GetAt — a store without version
  /// history fails loudly with FailedPrecondition rather than serving a
  /// possibly mixed-epoch answer.
  /// Number of nodes recorded in the store's metadata.
  Result<int64_t> NumNodes(uint64_t epoch = kHeadEpoch) const;
  Result<int64_t> FeatureDim(uint64_t epoch = kHeadEpoch) const;

  /// Reads one node's feature row (NotFound for entity nodes).
  Status ReadFeatures(int32_t node, std::vector<float>* out,
                      uint64_t epoch = kHeadEpoch) const;

  /// Reads one node's in-neighbour list.
  Status ReadNeighbors(int32_t node, std::vector<int32_t>* neighbors,
                       std::vector<uint8_t>* edge_types,
                       uint64_t epoch = kHeadEpoch) const;

  /// Node metadata.
  Status ReadNode(int32_t node, graph::NodeType* type, int8_t* label,
                  uint64_t epoch = kHeadEpoch) const;

  /// Materializes a model-ready batch for `seeds` by pure KV reads: BFS the
  /// k-hop neighbourhood (`hops`, fan-out capped at `fanout`) through "a"
  /// records and fill features from "f" records. This is the loader path
  /// whose single- vs multi-threaded throughput Figures 12-13 compare.
  ///
  /// Honors the calling thread's DeadlineScope: each BFS hop and each node
  /// materialization checks the remaining budget and fails fast with
  /// DeadlineExceeded once it is spent, so a dead request never keeps
  /// issuing KV reads.
  ///
  /// `epoch` is deliberately explicit (no default): a whole batch is read
  /// at ONE epoch — kHeadEpoch for the frozen/offline path, or a pinned
  /// published epoch for streaming reads — so rows from different epochs
  /// can never be silently merged into one tensor.
  Result<graph::MiniBatch> LoadBatch(const std::vector<int32_t>& seeds,
                                      int hops, int fanout, xfraud::Rng* rng,
                                      uint64_t epoch) const;

  /// What LoadBatchDegraded had to paper over (all zero on a clean load).
  struct DegradedLoadStats {
    /// Feature reads that exhausted replicas/retries → row zero-imputed.
    int64_t imputed_feature_rows = 0;
    /// Adjacency reads that failed → node kept, neighborhood not expanded
    /// and its induced edges dropped.
    int64_t failed_adjacency_reads = 0;
    /// Non-seed node records that failed → node type imputed as kTxn.
    int64_t imputed_node_types = 0;

    bool degraded() const {
      return imputed_feature_rows + failed_adjacency_reads +
                 imputed_node_types >
             0;
    }
    int64_t total() const {
      return imputed_feature_rows + failed_adjacency_reads +
             imputed_node_types;
    }
  };

  /// Degraded-tolerant LoadBatch for the serving path (PR 4's
  /// zero-imputation idea applied to online reads): read failures on
  /// features, adjacency, or non-seed node records degrade the batch
  /// (zero-imputed rows, skipped expansions) instead of failing it, with
  /// the damage tallied in `stats`. Failures that make the batch
  /// meaningless — metadata or a seed's own node record unreadable, or the
  /// deadline expiring — still fail. Identical to LoadBatch on a healthy
  /// store, including the RNG stream.
  Result<graph::MiniBatch> LoadBatchDegraded(
      const std::vector<int32_t>& seeds, int hops, int fanout,
      xfraud::Rng* rng, uint64_t epoch, DegradedLoadStats* stats) const;

 private:
  Result<graph::MiniBatch> LoadBatchImpl(const std::vector<int32_t>& seeds,
                                          int hops, int fanout,
                                          xfraud::Rng* rng, uint64_t epoch,
                                          DegradedLoadStats* stats) const;
  /// All reads funnel through here: one KV Get (or epoch-pinned GetAt)
  /// under the retry policy, with a deterministic per-key jitter stream.
  Status GetWithRetry(const std::string& key, std::string* value,
                      uint64_t epoch) const;

  KvStore* store_;
  RetryPolicy retry_;
  AdjacencyCache* adj_cache_ = nullptr;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_FEATURE_STORE_H_
