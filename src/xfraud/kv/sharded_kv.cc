#include "xfraud/kv/sharded_kv.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <string>

#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/common/timer.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/obs/registry.h"

namespace xfraud::kv {

ShardedKvStore::ShardedKvStore(std::vector<std::unique_ptr<KvStore>> shards)
    : owned_(std::move(shards)) {
  shards_.reserve(owned_.size());
  for (const auto& shard : owned_) shards_.push_back(shard.get());
  InitMetrics();
}

ShardedKvStore::ShardedKvStore(std::vector<KvStore*> shards)
    : shards_(std::move(shards)) {
  InitMetrics();
}

void ShardedKvStore::InitMetrics() {
  XF_CHECK(!shards_.empty());
  for (KvStore* shard : shards_) XF_CHECK(shard != nullptr);
  auto& registry = obs::Registry::Global();
  shard_get_s_.reserve(shards_.size());
  shard_put_s_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string prefix = "kv/shard" + std::to_string(i);
    shard_get_s_.push_back(registry.histogram(prefix + "/get_s"));
    shard_put_s_.push_back(registry.histogram(prefix + "/put_s"));
  }
}

std::unique_ptr<ShardedKvStore> ShardedKvStore::InMemory(int num_shards) {
  XF_CHECK_GT(num_shards, 0);
  std::vector<std::unique_ptr<KvStore>> shards;
  shards.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<MemKvStore>());
  }
  return std::make_unique<ShardedKvStore>(std::move(shards));
}

size_t ShardedKvStore::ShardOf(std::string_view key) const {
  size_t shard = std::hash<std::string_view>{}(key) % shards_.size();
  XF_DCHECK_BOUNDS(shard, shards_.size());
  return shard;
}

Status ShardedKvStore::Put(std::string_view key, std::string_view value) {
  size_t shard = ShardOf(key);
  if (!obs::IsEnabled()) return shards_[shard]->Put(key, value);
  WallTimer timer;
  Status s = shards_[shard]->Put(key, value);
  shard_put_s_[shard]->Record(timer.ElapsedSeconds());
  return s;
}

Status ShardedKvStore::Get(std::string_view key, std::string* value) const {
  size_t shard = ShardOf(key);
  auto read = [&] {
    if (!retry_.enabled()) return shards_[shard]->Get(key, value);
    uint64_t jitter_seed =
        Rng::StreamSeed(0x53484152ULL, std::hash<std::string_view>{}(key));
    return RetryWithBackoff(retry_, jitter_seed,
                            [&] { return shards_[shard]->Get(key, value); });
  };
  if (!obs::IsEnabled()) return read();
  WallTimer timer;
  Status s = read();
  shard_get_s_[shard]->Record(timer.ElapsedSeconds());
  return s;
}

Status ShardedKvStore::GetAt(std::string_view key, uint64_t epoch,
                             std::string* value) const {
  if (epoch == kHeadEpoch) return Get(key, value);
  size_t shard = ShardOf(key);
  auto read = [&] {
    if (!retry_.enabled()) return shards_[shard]->GetAt(key, epoch, value);
    uint64_t jitter_seed =
        Rng::StreamSeed(0x53484152ULL, std::hash<std::string_view>{}(key));
    return RetryWithBackoff(retry_, jitter_seed, [&] {
      return shards_[shard]->GetAt(key, epoch, value);
    });
  };
  if (!obs::IsEnabled()) return read();
  WallTimer timer;
  Status s = read();
  shard_get_s_[shard]->Record(timer.ElapsedSeconds());
  return s;
}

std::vector<std::string> ShardedKvStore::KeysWithPrefixAt(
    std::string_view prefix, uint64_t epoch) const {
  if (epoch == kHeadEpoch) return KeysWithPrefix(prefix);
  // Same shard-layout-independent merge as the head scan; every shard is
  // asked for the SAME epoch, so the merged listing is a single-epoch view.
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::vector<std::string> keys = shard->KeysWithPrefixAt(prefix, epoch);
    std::sort(keys.begin(), keys.end());  // defensive: contract says sorted
    std::vector<std::string> merged;
    merged.reserve(out.size() + keys.size());
    std::merge(std::make_move_iterator(out.begin()),
               std::make_move_iterator(out.end()),
               std::make_move_iterator(keys.begin()),
               std::make_move_iterator(keys.end()),
               std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

Status ShardedKvStore::Delete(std::string_view key) {
  return shards_[ShardOf(key)]->Delete(key);
}

int64_t ShardedKvStore::Count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->Count();
  return total;
}

std::vector<std::string> ShardedKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  // Merge the (sorted) per-shard lists so the result is in ascending byte
  // order regardless of shard count or hash layout — callers comparing key
  // listings across different shardings must see identical output.
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::vector<std::string> keys = shard->KeysWithPrefix(prefix);
    std::sort(keys.begin(), keys.end());  // defensive: contract says sorted
    std::vector<std::string> merged;
    merged.reserve(out.size() + keys.size());
    std::merge(std::make_move_iterator(out.begin()),
               std::make_move_iterator(out.end()),
               std::make_move_iterator(keys.begin()),
               std::make_move_iterator(keys.end()),
               std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

}  // namespace xfraud::kv
