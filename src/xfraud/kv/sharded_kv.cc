#include "xfraud/kv/sharded_kv.h"

#include <functional>

#include "xfraud/common/logging.h"
#include "xfraud/kv/mem_kv.h"

namespace xfraud::kv {

ShardedKvStore::ShardedKvStore(std::vector<std::unique_ptr<KvStore>> shards)
    : shards_(std::move(shards)) {
  XF_CHECK(!shards_.empty());
}

std::unique_ptr<ShardedKvStore> ShardedKvStore::InMemory(int num_shards) {
  XF_CHECK_GT(num_shards, 0);
  std::vector<std::unique_ptr<KvStore>> shards;
  shards.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<MemKvStore>());
  }
  return std::make_unique<ShardedKvStore>(std::move(shards));
}

size_t ShardedKvStore::ShardOf(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % shards_.size();
}

Status ShardedKvStore::Put(std::string_view key, std::string_view value) {
  return shards_[ShardOf(key)]->Put(key, value);
}

Status ShardedKvStore::Get(std::string_view key, std::string* value) const {
  return shards_[ShardOf(key)]->Get(key, value);
}

Status ShardedKvStore::Delete(std::string_view key) {
  return shards_[ShardOf(key)]->Delete(key);
}

int64_t ShardedKvStore::Count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->Count();
  return total;
}

std::vector<std::string> ShardedKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    auto keys = shard->KeysWithPrefix(prefix);
    out.insert(out.end(), keys.begin(), keys.end());
  }
  return out;
}

}  // namespace xfraud::kv
