#ifndef XFRAUD_KV_KV_METRICS_H_
#define XFRAUD_KV_KV_METRICS_H_

#include "xfraud/obs/registry.h"

namespace xfraud::kv {

/// Cached global-registry handles shared by every KvStore backend: hit/miss
/// ratio of the loader's point reads plus the bytes crossing the store
/// boundary in each direction. Backends bump these inside their own locks'
/// shadow (relaxed atomics; a few ns on top of a map probe or log append).
/// Per-shard op latency lives in ShardedKvStore, which owns the fan-out.
struct KvMetrics {
  obs::Counter* get_hits;
  obs::Counter* get_misses;
  obs::Counter* put_ops;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;

  static const KvMetrics& Get() {
    static const KvMetrics m = [] {
      auto& r = obs::Registry::Global();
      return KvMetrics{r.counter("kv/get_hits"), r.counter("kv/get_misses"),
                       r.counter("kv/put_ops"), r.counter("kv/bytes_read"),
                       r.counter("kv/bytes_written")};
    }();
    return m;
  }
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_KV_METRICS_H_
