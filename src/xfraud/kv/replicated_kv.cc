#include "xfraud/kv/replicated_kv.h"

#include <algorithm>
#include <functional>

#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/obs/registry.h"

namespace xfraud::kv {

namespace {

// Salt folded into the key hash for primary selection, distinct from the
// sharding hash so the primary replica is uncorrelated with the shard.
constexpr uint64_t kPrimarySalt = 0x5245504CULL;  // "REPL"

thread_local double t_hedge_rebate_s = 0.0;

}  // namespace

double HedgeRebate::Take() {
  double credit = t_hedge_rebate_s;
  t_hedge_rebate_s = 0.0;
  return credit;
}

void HedgeRebate::Add(double seconds) { t_hedge_rebate_s += seconds; }

ReplicatedKvStore::ReplicatedKvStore(std::vector<KvStore*> replicas,
                                     ReplicationOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  Init();
}

ReplicatedKvStore::ReplicatedKvStore(
    std::vector<std::unique_ptr<KvStore>> replicas,
    ReplicationOptions options)
    : owned_(std::move(replicas)), options_(options) {
  replicas_.reserve(owned_.size());
  for (const auto& r : owned_) replicas_.push_back(r.get());
  Init();
}

void ReplicatedKvStore::Init() {
  XF_CHECK(!replicas_.empty());
  for (KvStore* r : replicas_) XF_CHECK(r != nullptr);
  clock_ = options_.clock != nullptr ? options_.clock : Clock::Real();
  XF_CHECK_GE(options_.breaker.min_events, 1);
  breakers_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    auto b = std::make_unique<Breaker>();
    b->outcomes.assign(
        options_.breaker.enabled() ? options_.breaker.window : 0, 0);
    breakers_.push_back(std::move(b));
  }
  auto& r = obs::Registry::Global();
  reads_ = r.counter("kv/replicated/reads");
  failovers_ = r.counter("kv/replicated/failovers");
  hedged_reads_ = r.counter("kv/replicated/hedged_reads");
  hedge_wins_ = r.counter("kv/replicated/hedge_wins");
  breaker_opens_ = r.counter("kv/replicated/breaker_opens");
  breaker_closes_ = r.counter("kv/replicated/breaker_closes");
  exhausted_ = r.counter("kv/replicated/exhausted");
  get_s_ = r.histogram("kv/replicated/get_s");
}

std::unique_ptr<ReplicatedKvStore> ReplicatedKvStore::InMemory(
    int num_replicas, ReplicationOptions options) {
  XF_CHECK_GT(num_replicas, 0);
  std::vector<std::unique_ptr<KvStore>> replicas;
  replicas.reserve(num_replicas);
  for (int i = 0; i < num_replicas; ++i) {
    replicas.push_back(std::make_unique<MemKvStore>());
  }
  return std::make_unique<ReplicatedKvStore>(std::move(replicas), options);
}

size_t ReplicatedKvStore::PrimaryOf(std::string_view key) const {
  uint64_t h = std::hash<std::string_view>{}(key);
  return Rng::StreamSeed(kPrimarySalt, h) % replicas_.size();
}

ReplicatedKvStore::BreakerState ReplicatedKvStore::breaker_state(
    size_t replica) const {
  XF_CHECK_BOUNDS(replica, breakers_.size());
  std::lock_guard<std::mutex> lock(breakers_[replica]->mu);
  return breakers_[replica]->state;
}

bool ReplicatedKvStore::AdmitRead(size_t r) const {
  if (!options_.breaker.enabled()) return true;
  Breaker& b = *breakers_[r];
  std::lock_guard<std::mutex> lock(b.mu);
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time; everyone else keeps failing over.
      return false;
    case BreakerState::kOpen:
      if (clock_->NowSeconds() >= b.probe_at_s) {
        b.state = BreakerState::kHalfOpen;  // this caller is the probe
        return true;
      }
      return false;
  }
  return true;
}

void ReplicatedKvStore::RecordOutcome(size_t r, bool healthy) const {
  if (!options_.breaker.enabled()) return;
  Breaker& b = *breakers_[r];
  std::lock_guard<std::mutex> lock(b.mu);
  switch (b.state) {
    case BreakerState::kOpen:
      // A straggler from before the breaker opened; the probe will decide.
      return;
    case BreakerState::kHalfOpen:
      if (healthy) {
        b.state = BreakerState::kClosed;
        std::fill(b.outcomes.begin(), b.outcomes.end(), 0);
        b.next = 0;
        b.filled = 0;
        b.errors = 0;
        breaker_closes_->Increment();
      } else {
        b.state = BreakerState::kOpen;
        b.probe_at_s = clock_->NowSeconds() + options_.breaker.cooloff_s;
      }
      return;
    case BreakerState::kClosed:
      break;
  }
  if (b.filled == static_cast<int>(b.outcomes.size())) {
    b.errors -= b.outcomes[b.next];
  } else {
    ++b.filled;
  }
  b.outcomes[b.next] = healthy ? 0 : 1;
  b.errors += b.outcomes[b.next];
  b.next = (b.next + 1) % b.outcomes.size();
  if (b.filled >= options_.breaker.min_events &&
      static_cast<double>(b.errors) >=
          options_.breaker.error_frac * static_cast<double>(b.filled)) {
    b.state = BreakerState::kOpen;
    b.probe_at_s = clock_->NowSeconds() + options_.breaker.cooloff_s;
    breaker_opens_->Increment();
  }
}

Status ReplicatedKvStore::GetOnce(size_t r, std::string_view key,
                                  uint64_t epoch, std::string* value,
                                  double* latency_s) const {
  const double start_s = clock_->NowSeconds();
  Status s = epoch == kHeadEpoch ? replicas_[r]->Get(key, value)
                                 : replicas_[r]->GetAt(key, epoch, value);
  *latency_s = clock_->NowSeconds() - start_s;
  return s;
}

Status ReplicatedKvStore::Get(std::string_view key,
                              std::string* value) const {
  return GetImpl(key, kHeadEpoch, value);
}

Status ReplicatedKvStore::GetAt(std::string_view key, uint64_t epoch,
                                std::string* value) const {
  return GetImpl(key, epoch, value);
}

std::vector<std::string> ReplicatedKvStore::KeysWithPrefixAt(
    std::string_view prefix, uint64_t epoch) const {
  return replicas_[0]->KeysWithPrefixAt(prefix, epoch);
}

Status ReplicatedKvStore::GetImpl(std::string_view key, uint64_t epoch,
                                  std::string* value) const {
  reads_->Increment();
  const Deadline* deadline = DeadlineScope::Current();
  const size_t n = replicas_.size();
  const size_t primary = PrimaryOf(key);
  Status last = Status::OK();
  bool any_attempt = false;
  for (size_t i = 0; i < n; ++i) {
    const size_t r = (primary + i) % n;
    if (deadline != nullptr && deadline->Expired()) {
      return Status::DeadlineExceeded(
          "deadline expired before replica read of key '" +
          std::string(key) + "'");
    }
    if (!AdmitRead(r)) continue;
    if (any_attempt) failovers_->Increment();
    any_attempt = true;
    std::string tmp;
    double latency = 0.0;
    Status s = GetOnce(r, key, epoch, &tmp, &latency);
    // NotFound and FailedPrecondition are authoritative answers (replicas
    // hold identical histories): healthy for the breaker, no failover.
    const bool healthy =
        s.ok() || s.IsNotFound() || s.IsFailedPrecondition();
    RecordOutcome(r, healthy);
    if (!healthy) {
      last = std::move(s);
      continue;
    }
    double effective = latency;
    if (options_.hedge_delay_s >= 0.0 &&
        latency > options_.hedge_delay_s) {
      // The primary was slow enough that a real deployment would have
      // fired a backup request at hedge_delay; emulate that race against
      // the next admitted replica.
      for (size_t j = i + 1; j < n; ++j) {
        const size_t h = (primary + j) % n;
        if (!AdmitRead(h)) continue;
        hedged_reads_->Increment();
        std::string hedge_tmp;
        double hedge_latency = 0.0;
        Status hs = GetOnce(h, key, epoch, &hedge_tmp, &hedge_latency);
        const bool hedge_healthy = hs.ok() || hs.IsNotFound();
        RecordOutcome(h, hedge_healthy);
        const double hedged_total = options_.hedge_delay_s + hedge_latency;
        if (hedge_healthy && hedged_total < latency) {
          hedge_wins_->Increment();
          HedgeRebate::Add(latency - hedged_total);
          effective = hedged_total;
          tmp = std::move(hedge_tmp);
          s = std::move(hs);
        }
        break;  // at most one hedge per read
      }
    }
    if (obs::IsEnabled()) get_s_->Record(effective);
    if (s.ok()) *value = std::move(tmp);
    return s;
  }
  exhausted_->Increment();
  if (!any_attempt) {
    return Status::Unavailable("no replica admitted read of key '" +
                               std::string(key) +
                               "' (all circuit breakers open)");
  }
  return last;
}

Status ReplicatedKvStore::Put(std::string_view key, std::string_view value) {
  Status first_error = Status::OK();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Status s = replicas_[r]->Put(key, value);
    RecordOutcome(r, s.ok());
    if (!s.ok() && first_error.ok()) first_error = std::move(s);
  }
  return first_error;
}

Status ReplicatedKvStore::Delete(std::string_view key) {
  Status first_error = Status::OK();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Status s = replicas_[r]->Delete(key);
    const bool healthy = s.ok() || s.IsNotFound();
    RecordOutcome(r, healthy);
    if (!healthy && first_error.ok()) first_error = std::move(s);
  }
  return first_error;
}

int64_t ReplicatedKvStore::Count() const { return replicas_[0]->Count(); }

std::vector<std::string> ReplicatedKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  return replicas_[0]->KeysWithPrefix(prefix);
}

}  // namespace xfraud::kv
