#ifndef XFRAUD_KV_SNAPSHOT_H_
#define XFRAUD_KV_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "xfraud/common/status.h"
#include "xfraud/kv/kvstore.h"

namespace xfraud::kv {

/// The epoch/MVCC control surface (DESIGN.md §15). LogKvStore implements it
/// directly; stream::StreamingTopology fans it out across a shard × replica
/// grid of logs. The contract:
///
///  - Writes accumulate in the *pending* epoch (published + 1). They are
///    durable in the WAL immediately but invisible to epoch-pinned readers
///    until PublishEpoch commits them atomically (marker record + fsync).
///  - PinEpoch/UnpinEpoch bracket a reader's claim on a published epoch;
///    while any pin is live, compaction and TTL expiry must preserve every
///    version visible at that epoch.
///  - DiscardPending drops uncommitted writes (crash-recovery semantics on
///    reattach: a half-written epoch is rolled back, never half-published).
class EpochSource {
 public:
  virtual ~EpochSource() = default;

  /// Commits the pending epoch; returns the newly published epoch number.
  virtual Result<uint64_t> PublishEpoch() = 0;

  /// Latest published epoch (0 = nothing published yet).
  virtual uint64_t published_epoch() const = 0;

  /// Claims `epoch` against GC. Fails if the epoch is unpublished or
  /// already compacted away (below the GC floor).
  virtual Status PinEpoch(uint64_t epoch) = 0;
  virtual void UnpinEpoch(uint64_t epoch) = 0;

  /// Truncates any uncommitted (pending-epoch) writes from the log.
  virtual Status DiscardPending() = 0;

  /// Garbage-collects versions no pinned or future reader can see; returns
  /// bytes reclaimed. Safe to call concurrently with pinned readers.
  virtual Result<int64_t> Compact() = 0;
};

/// Move-only RAII pin on a published epoch. While the handle is alive,
/// every GetAt/KeysWithPrefixAt at its epoch sees the exact committed state
/// of that epoch — concurrent writers, publishes, TTL expiry, and
/// compaction cannot disturb it. Destroying the last handle on an epoch
/// unblocks GC of its superseded versions.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  ~SnapshotHandle() { Release(); }

  SnapshotHandle(SnapshotHandle&& other) noexcept
      : source_(other.source_), epoch_(other.epoch_) {
    other.source_ = nullptr;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      source_ = other.source_;
      epoch_ = other.epoch_;
      other.source_ = nullptr;
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// Pins a specific published epoch.
  static Result<SnapshotHandle> Pin(EpochSource* source, uint64_t epoch);

  /// Pins the latest published epoch. If a publish races in between the
  /// read and the pin, the pinned epoch is simply the one read — still a
  /// valid consistent snapshot.
  static Result<SnapshotHandle> PinLatest(EpochSource* source);

  /// True if this handle holds a live pin.
  bool valid() const { return source_ != nullptr; }
  uint64_t epoch() const { return epoch_; }

  /// Drops the pin early (idempotent).
  void Release() {
    if (source_ != nullptr) {
      source_->UnpinEpoch(epoch_);
      source_ = nullptr;
    }
  }

 private:
  SnapshotHandle(EpochSource* source, uint64_t epoch)
      : source_(source), epoch_(epoch) {}

  EpochSource* source_ = nullptr;
  uint64_t epoch_ = 0;
};

/// Per-epoch adjacency (frontier) cache for the sampler's epoch-pinned
/// walks. Adjacency rows are immutable *within* an epoch — an epoch is a
/// committed snapshot — so caching (epoch, node) → neighbor bytes is safe
/// and turns the sampler's hottest KV reads into memory lookups. Head
/// reads (kHeadEpoch) are never cached: the head mutates under writers.
/// Entries are dropped per epoch when the last GraphView on that epoch
/// goes away (the incremental invalidation protocol: nothing is evicted
/// early, nothing stale survives the epoch).
class AdjacencyCache {
 public:
  /// Returns true and fills `*value` on a hit.
  bool Lookup(uint64_t epoch, int64_t node, std::string* value) const;
  void Insert(uint64_t epoch, int64_t node, std::string value);
  void EvictEpoch(uint64_t epoch);

  int64_t entries() const;

 private:
  mutable std::mutex mu_;
  // Ordered map keyed by epoch so eviction is a single erase; inner map
  // keyed by node id. Iteration order never escapes (point lookups only).
  std::map<uint64_t, std::map<int64_t, std::string>> epochs_;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_SNAPSHOT_H_
