#ifndef XFRAUD_KV_SHARDED_KV_H_
#define XFRAUD_KV_SHARDED_KV_H_

#include <memory>
#include <string>
#include <vector>

#include "xfraud/common/retry.h"
#include "xfraud/kv/kvstore.h"
#include "xfraud/obs/metrics.h"

namespace xfraud::kv {

/// Hash-sharded wrapper: key space split across N inner stores so loader
/// threads contend on 1/N of the locks — the "multi threaded KVStore" of
/// paper Figure 13 that each DDP worker's data loader reads independently.
class ShardedKvStore : public KvStore {
 public:
  /// Takes ownership of the shard stores. Pre: at least one shard.
  explicit ShardedKvStore(std::vector<std::unique_ptr<KvStore>> shards);

  /// Non-owning view over externally owned shards (the serving topology
  /// layers shards over replicated/faulty stores it owns itself, and also
  /// builds per-replica ingest views over the same cells). The shards must
  /// outlive this store. Pre: at least one shard, none null.
  explicit ShardedKvStore(std::vector<KvStore*> shards);

  /// Convenience: N in-memory shards.
  static std::unique_ptr<ShardedKvStore> InMemory(int num_shards);

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  int64_t Count() const override;
  std::vector<std::string> KeysWithPrefix(
      std::string_view prefix) const override;
  /// Epoch-pinned reads route to the same shard and retry policy as their
  /// head counterparts; the epoch travels to the shard backend verbatim, so
  /// a scan can never silently merge rows from different epochs — shards
  /// that can't serve the epoch fail loudly instead.
  Status GetAt(std::string_view key, uint64_t epoch,
               std::string* value) const override;
  std::vector<std::string> KeysWithPrefixAt(std::string_view prefix,
                                            uint64_t epoch) const override;

  size_t num_shards() const { return shards_.size(); }

  /// Retry-with-backoff for shard reads (default: single attempt). Lets a
  /// sharded store built over flaky backends (network shards, FaultyKvStore
  /// in chaos tests) absorb transient IoError/Corruption at the shard
  /// boundary. Configure before sharing the store across threads.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  size_t ShardOf(std::string_view key) const;
  void InitMetrics();

  std::vector<std::unique_ptr<KvStore>> owned_;
  std::vector<KvStore*> shards_;
  RetryPolicy retry_;
  // Per-shard op-latency histograms ("kv/shard<i>/get_s", ".../put_s") in
  // the global registry: a hot shard (skewed hash or a slow backend) shows
  // up as one shard's p99 detaching from the others'.
  std::vector<obs::Histogram*> shard_get_s_;
  std::vector<obs::Histogram*> shard_put_s_;
};

}  // namespace xfraud::kv

#endif  // XFRAUD_KV_SHARDED_KV_H_
