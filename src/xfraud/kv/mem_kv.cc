#include "xfraud/kv/mem_kv.h"

#include <algorithm>

#include "xfraud/common/crc32.h"
#include "xfraud/kv/kv_metrics.h"

namespace xfraud::kv {

Status MemKvStore::Put(std::string_view key, std::string_view value) {
  const KvMetrics& metrics = KvMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  map_[std::string(key)] = std::string(value);
  metrics.put_ops->Increment();
  metrics.bytes_written->Add(static_cast<int64_t>(key.size() + value.size()));
  return Status::OK();
}

Status MemKvStore::Get(std::string_view key, std::string* value) const {
  const KvMetrics& metrics = KvMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    metrics.get_misses->Increment();
    return Status::NotFound("key: " + std::string(key));
  }
  *value = it->second;
  metrics.get_hits->Increment();
  metrics.bytes_read->Add(static_cast<int64_t>(value->size()));
  return Status::OK();
}

Status MemKvStore::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.erase(std::string(key));
  return Status::OK();
}

int64_t MemKvStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(map_.size());
}

std::vector<std::string> MemKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  // Order-insensitive hash-map walk: the matches are sorted below, so the
  // iteration order never reaches the caller.
  // xfraud-analyze: allow(unordered-iter)
  for (const auto& [key, value] : map_) {
    if (key.size() >= prefix.size() &&
        std::string_view(key).substr(0, prefix.size()) == prefix) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xfraud::kv
