#include "xfraud/kv/mem_kv.h"

#include <algorithm>

#include "xfraud/kv/kv_metrics.h"

namespace xfraud::kv {

namespace {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status MemKvStore::Put(std::string_view key, std::string_view value) {
  const KvMetrics& metrics = KvMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  map_[std::string(key)] = std::string(value);
  metrics.put_ops->Increment();
  metrics.bytes_written->Add(static_cast<int64_t>(key.size() + value.size()));
  return Status::OK();
}

Status MemKvStore::Get(std::string_view key, std::string* value) const {
  const KvMetrics& metrics = KvMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    metrics.get_misses->Increment();
    return Status::NotFound("key: " + std::string(key));
  }
  *value = it->second;
  metrics.get_hits->Increment();
  metrics.bytes_read->Add(static_cast<int64_t>(value->size()));
  return Status::OK();
}

Status MemKvStore::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.erase(std::string(key));
  return Status::OK();
}

int64_t MemKvStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(map_.size());
}

std::vector<std::string> MemKvStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, value] : map_) {
    if (key.size() >= prefix.size() &&
        std::string_view(key).substr(0, prefix.size()) == prefix) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xfraud::kv
