#include "xfraud/serve/wire.h"

#include <cmath>
#include <cstring>

namespace xfraud::serve {

namespace {

// Little-endian, byte-by-byte — same convention as common/frame.cc, so the
// payloads are host-endianness independent like the headers around them.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

double GetF64(const unsigned char* p) {
  const uint64_t bits = GetU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

constexpr size_t kScoreRequestBytes = 20;
constexpr size_t kScoreReplyFixedBytes = 42;
constexpr size_t kHealthBytes = 16;

}  // namespace

std::string EncodeScoreRequest(const ScoreRequestWire& req) {
  std::string out;
  out.reserve(kScoreRequestBytes);
  PutU64(&out, req.epoch);
  uint64_t deadline_us = kNoDeadlineUs;
  if (req.deadline_s >= 0.0) {
    // Round down: a truncated budget can only make the server *more*
    // conservative about an almost-spent deadline, never less.
    deadline_us = static_cast<uint64_t>(req.deadline_s * 1e6);
    if (deadline_us == kNoDeadlineUs) --deadline_us;  // +inf guard
  }
  PutU64(&out, deadline_us);
  PutU32(&out, static_cast<uint32_t>(req.txn_node));
  return out;
}

Result<ScoreRequestWire> DecodeScoreRequest(const void* payload, size_t n) {
  if (n != kScoreRequestBytes) {
    return Status::Corruption("score request payload is " +
                              std::to_string(n) + " bytes, want " +
                              std::to_string(kScoreRequestBytes));
  }
  const auto* p = static_cast<const unsigned char*>(payload);
  ScoreRequestWire req;
  req.epoch = GetU64(p);
  const uint64_t deadline_us = GetU64(p + 8);
  req.deadline_s = deadline_us == kNoDeadlineUs
                       ? -1.0
                       : static_cast<double>(deadline_us) * 1e-6;
  req.txn_node = static_cast<int32_t>(GetU32(p + 16));
  return req;
}

std::string EncodeScoreReply(const ScoreReplyWire& reply) {
  std::string out;
  out.reserve(kScoreReplyFixedBytes + reply.status.message().size());
  PutU32(&out, static_cast<uint32_t>(reply.status.code()));
  PutF64(&out, reply.response.score);
  PutU64(&out, static_cast<uint64_t>(reply.response.imputed_rows));
  PutF64(&out, reply.response.latency_s);
  PutF64(&out, reply.response.deadline_slack_s);
  out.push_back(reply.response.degraded ? 1 : 0);
  out.push_back(reply.response.from_prefilter ? 1 : 0);
  const std::string& msg = reply.status.message();
  PutU32(&out, static_cast<uint32_t>(msg.size()));
  out.append(msg);
  return out;
}

Result<ScoreReplyWire> DecodeScoreReply(const void* payload, size_t n) {
  if (n < kScoreReplyFixedBytes) {
    return Status::Corruption("score reply payload is " + std::to_string(n) +
                              " bytes, want at least " +
                              std::to_string(kScoreReplyFixedBytes));
  }
  const auto* p = static_cast<const unsigned char*>(payload);
  const uint32_t code = GetU32(p);
  ScoreReplyWire reply;
  reply.response.score = GetF64(p + 4);
  reply.response.imputed_rows = static_cast<int64_t>(GetU64(p + 12));
  reply.response.latency_s = GetF64(p + 20);
  reply.response.deadline_slack_s = GetF64(p + 28);
  reply.response.degraded = p[36] != 0;
  reply.response.from_prefilter = p[37] != 0;
  const uint32_t msg_len = GetU32(p + 38);
  if (n != kScoreReplyFixedBytes + msg_len) {
    return Status::Corruption("score reply message length disagrees with "
                              "payload size");
  }
  std::string msg(reinterpret_cast<const char*>(p + kScoreReplyFixedBytes),
                  msg_len);
  XF_RETURN_IF_ERROR(StatusFromWire(code, std::move(msg), &reply.status));
  return reply;
}

std::string EncodeHealth(const HealthWire& health) {
  std::string out;
  out.reserve(kHealthBytes);
  PutU64(&out, health.generation);
  PutU64(&out, static_cast<uint64_t>(health.requests_served));
  return out;
}

Result<HealthWire> DecodeHealth(const void* payload, size_t n) {
  if (n != kHealthBytes) {
    return Status::Corruption("health payload is " + std::to_string(n) +
                              " bytes, want " + std::to_string(kHealthBytes));
  }
  const auto* p = static_cast<const unsigned char*>(payload);
  HealthWire health;
  health.generation = GetU64(p);
  health.requests_served = static_cast<int64_t>(GetU64(p + 8));
  return health;
}

Status StatusFromWire(uint32_t code, std::string message, Status* out) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      *out = Status::OK();
      return Status::OK();
    case StatusCode::kInvalidArgument:
      *out = Status::InvalidArgument(std::move(message));
      return Status::OK();
    case StatusCode::kNotFound:
      *out = Status::NotFound(std::move(message));
      return Status::OK();
    case StatusCode::kAlreadyExists:
      *out = Status::AlreadyExists(std::move(message));
      return Status::OK();
    case StatusCode::kIoError:
      *out = Status::IoError(std::move(message));
      return Status::OK();
    case StatusCode::kCorruption:
      *out = Status::Corruption(std::move(message));
      return Status::OK();
    case StatusCode::kOutOfRange:
      *out = Status::OutOfRange(std::move(message));
      return Status::OK();
    case StatusCode::kFailedPrecondition:
      *out = Status::FailedPrecondition(std::move(message));
      return Status::OK();
    case StatusCode::kInternal:
      *out = Status::Internal(std::move(message));
      return Status::OK();
    case StatusCode::kUnavailable:
      *out = Status::Unavailable(std::move(message));
      return Status::OK();
    case StatusCode::kDeadlineExceeded:
      *out = Status::DeadlineExceeded(std::move(message));
      return Status::OK();
  }
  return Status::Corruption("unknown status code " + std::to_string(code) +
                            " on the wire");
}

}  // namespace xfraud::serve
