#include "xfraud/serve/scoring_service.h"

#include <algorithm>
#include <string>
#include <vector>

#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/kv/replicated_kv.h"
#include "xfraud/obs/registry.h"

namespace xfraud::serve {

struct ScoringService::InflightGuard {
  explicit InflightGuard(ScoringService* service) : service_(service) {
    depth_ =
        service_->inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    service_->inflight_gauge_->Set(static_cast<double>(depth_));
  }
  ~InflightGuard() {
    int64_t now =
        service_->inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    service_->inflight_gauge_->Set(static_cast<double>(now));
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

  /// Queue depth including this request, at admission time.
  int64_t depth() const { return depth_; }

  ScoringService* service_;
  int64_t depth_ = 0;
};

ScoringService::ScoringService(const core::GnnModel* model,
                               const kv::FeatureStore* features,
                               ServiceOptions options)
    : model_(model), features_(features), options_(options) {
  XF_CHECK(model_ != nullptr);
  XF_CHECK(features_ != nullptr);
  clock_ = options_.clock != nullptr ? options_.clock : Clock::Real();
  auto& r = obs::Registry::Global();
  requests_ = r.counter("serve/requests");
  ok_ = r.counter("serve/ok");
  shed_ = r.counter("serve/shed");
  degraded_ = r.counter("serve/degraded");
  from_prefilter_ = r.counter("serve/from_prefilter");
  unavailable_ = r.counter("serve/unavailable");
  deadline_exceeded_ = r.counter("serve/deadline_exceeded");
  inflight_gauge_ = r.gauge("serve/inflight");
  score_s_ = r.histogram("serve/score_s");
  sample_s_ = r.histogram("serve/sample_s");
  forward_s_ = r.histogram("serve/forward_s");
  slack_after_sample_s_ = r.histogram("serve/slack_after_sample_s");
  deadline_slack_s_ = r.histogram("serve/deadline_slack_s");
}

bool ScoringService::AdmitDegraded() {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  // Would admitting this response keep degraded/completed within budget?
  if (static_cast<double>(degraded_completed_ + 1) >
      options_.max_degraded_frac * static_cast<double>(completed_ + 1)) {
    return false;
  }
  ++degraded_completed_;
  ++completed_;
  return true;
}

void ScoringService::RecordClean() {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  ++completed_;
}

Result<ScoreResponse> ScoringService::Finish(ScoreResponse resp,
                                             double start_s,
                                             const Deadline& deadline) {
  // Hedge wins rebate the time a racing backup request would have saved;
  // subtracting it makes latency_s equal the true hedged behavior (the
  // emulation in ReplicatedKvStore runs the race sequentially).
  const double rebate_s = kv::HedgeRebate::Take();
  resp.latency_s =
      std::max(0.0, clock_->NowSeconds() - start_s - rebate_s);
  if (!deadline.unlimited()) {
    resp.deadline_slack_s =
        std::max(0.0, deadline.RemainingSeconds() + rebate_s);
    deadline_slack_s_->Record(resp.deadline_slack_s);
  }
  score_s_->Record(resp.latency_s);
  ok_->Increment();
  if (resp.degraded) degraded_->Increment();
  if (resp.from_prefilter) from_prefilter_->Increment();
  return resp;
}

Result<ScoreResponse> ScoringService::FallbackScore(int32_t txn_node,
                                                    double start_s,
                                                    const Deadline& deadline,
                                                    uint64_t epoch,
                                                    const char* reason) {
  XF_CHECK(fallback_ != nullptr);
  // The fallback still reads the seed's own features, under the deadline
  // and at the request's pinned epoch.
  DeadlineScope scope(deadline);
  std::vector<float> features;
  Status fs = features_->ReadFeatures(txn_node, &features, epoch);
  if (fs.IsDeadlineExceeded()) {
    deadline_exceeded_->Increment();
    return fs;
  }
  if (!fs.ok() && !fs.IsNotFound()) {
    unavailable_->Increment();
    return Status::Unavailable(std::string(reason) +
                               "; prefilter fallback failed too: " +
                               fs.ToString());
  }
  if (!AdmitDegraded()) {
    unavailable_->Increment();
    return Status::Unavailable(
        std::string(reason) + "; degraded budget exhausted (max_degraded_frac=" +
        std::to_string(options_.max_degraded_frac) + ")");
  }
  ScoreResponse resp;
  resp.score = fallback_->Score(features);
  resp.degraded = true;
  resp.from_prefilter = true;
  return Finish(std::move(resp), start_s, deadline);
}

Result<ScoreResponse> ScoringService::Score(int64_t request_id,
                                            int32_t txn_node) {
  return Score(request_id, txn_node, options_.deadline_s);
}

Result<ScoreResponse> ScoringService::Score(int64_t request_id,
                                            int32_t txn_node,
                                            double deadline_s) {
  return ScoreAt(request_id, txn_node, deadline_s, kv::kHeadEpoch);
}

Result<ScoreResponse> ScoringService::ScoreAt(int64_t request_id,
                                              int32_t txn_node,
                                              double deadline_s,
                                              uint64_t epoch) {
  requests_->Increment();
  (void)kv::HedgeRebate::Take();  // drop stale credit from earlier work
  const double start_s = clock_->NowSeconds();
  const Deadline deadline = deadline_s > 0.0
                                ? Deadline::After(clock_, deadline_s)
                                : Deadline();

  InflightGuard guard(this);
  if (options_.max_inflight > 0 && guard.depth() > options_.max_inflight) {
    shed_->Increment();
    if (options_.shed_policy == ShedPolicy::kDegrade &&
        fallback_ != nullptr) {
      return FallbackScore(txn_node, start_s, deadline, epoch, "load shed");
    }
    return Status::Unavailable(
        "load shed: " + std::to_string(guard.depth()) +
        " requests in flight > max_inflight=" +
        std::to_string(options_.max_inflight));
  }

  // Sampling + KV stage, under the request deadline.
  DeadlineScope scope(deadline);
  Rng rng(Rng::StreamSeed(options_.seed, static_cast<uint64_t>(request_id)));
  kv::FeatureStore::DegradedLoadStats stats;
  const double sample_start_s = clock_->NowSeconds();
  Result<sample::MiniBatch> batch = features_->LoadBatchDegraded(
      {txn_node}, options_.hops, options_.fanout, &rng, epoch, &stats);
  sample_s_->Record(clock_->NowSeconds() - sample_start_s);
  if (!batch.ok()) {
    if (batch.status().IsDeadlineExceeded()) {
      deadline_exceeded_->Increment();
      return batch.status();
    }
    if (options_.shed_policy == ShedPolicy::kDegrade &&
        fallback_ != nullptr && !deadline.Expired()) {
      return FallbackScore(txn_node, start_s, deadline, epoch,
                           "graph load failed");
    }
    unavailable_->Increment();
    return Status::Unavailable("scoring unavailable: " +
                               batch.status().ToString());
  }
  if (!deadline.unlimited()) {
    slack_after_sample_s_->Record(
        std::max(0.0, deadline.RemainingSeconds()));
  }

  // Forward stage: charge the remaining budget before starting (the pass
  // itself is not interruptible — deadline checks live at stage edges).
  if (deadline.Expired()) {
    deadline_exceeded_->Increment();
    return Status::DeadlineExceeded(
        "deadline exhausted before forward pass of request " +
        std::to_string(request_id));
  }
  const bool degraded = stats.degraded();
  if (degraded && !AdmitDegraded()) {
    unavailable_->Increment();
    return Status::Unavailable(
        "degraded batch over budget (max_degraded_frac=" +
        std::to_string(options_.max_degraded_frac) + ")");
  }
  const double forward_start_s = clock_->NowSeconds();
  nn::Var logits = model_->Forward(batch.value(), core::ForwardOptions{});
  std::vector<double> probs = core::FraudProbabilities(logits);
  forward_s_->Record(clock_->NowSeconds() - forward_start_s);
  if (!degraded) RecordClean();

  ScoreResponse resp;
  resp.score = probs.at(0);
  resp.degraded = degraded;
  resp.imputed_rows = stats.imputed_feature_rows;
  return Finish(std::move(resp), start_s, deadline);
}

}  // namespace xfraud::serve
