#ifndef XFRAUD_SERVE_SCORING_SERVICE_H_
#define XFRAUD_SERVE_SCORING_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "xfraud/baselines/rule_scorer.h"
#include "xfraud/common/clock.h"
#include "xfraud/common/status.h"
#include "xfraud/core/gnn_model.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/obs/metrics.h"

namespace xfraud::serve {

/// What a shed request gets instead of a full GNN score.
enum class ShedPolicy {
  /// Fast Unavailable — the caller retries elsewhere.
  kFailFast,
  /// A cheap degraded score from the prefilter baseline (requires a
  /// fallback scorer; counts against the degraded budget).
  kDegrade,
};

struct ServiceOptions {
  /// Neighborhood sampled per request (LoadBatch hops/fanout).
  int hops = 2;
  int fanout = 12;
  /// Default per-request wall budget; <= 0 disables deadlines.
  double deadline_s = 0.25;
  /// Admission control: requests past this many concurrent scores are
  /// shed; <= 0 disables shedding.
  int max_inflight = 64;
  ShedPolicy shed_policy = ShedPolicy::kFailFast;
  /// Ceiling on the running fraction of degraded responses (zero-imputed
  /// batches and prefilter fallbacks). Past it, would-be-degraded requests
  /// fail fast with Unavailable instead — mirroring the training side's
  /// --max-degraded-frac budget.
  double max_degraded_frac = 1.0;
  /// Root of the per-request sampling RNG streams: request_id r always
  /// samples with Rng(StreamSeed(seed, r)), so any request replays
  /// bit-identically regardless of arrival order or thread.
  uint64_t seed = 17;
  /// Time source for deadlines and latency; nullptr means Clock::Real().
  Clock* clock = nullptr;
};

struct ScoreResponse {
  double score = 0.0;
  /// True when anything was papered over (imputed rows, skipped
  /// expansions, or a prefilter fallback).
  bool degraded = false;
  /// True when the score came from the prefilter baseline, not the GNN.
  bool from_prefilter = false;
  /// Zero-imputed feature rows in the scored batch.
  int64_t imputed_rows = 0;
  /// End-to-end latency, net of hedge-win rebates (see kv::HedgeRebate).
  double latency_s = 0.0;
  /// Deadline budget left at completion (0 when no deadline was set).
  double deadline_slack_s = 0.0;
};

/// The deterministic online fraud-scoring service (the request path of
/// paper §3.3.3): Score() samples the transaction's k-hop neighborhood and
/// features over the (replicated, possibly failing) FeatureStore, runs the
/// detector forward pass, and returns the fraud probability — hardened
/// with admission control, deadline propagation (via DeadlineScope, so the
/// sampler and every KV read below it observe the budget), degraded-mode
/// loading, and an optional prefilter fallback.
///
/// Thread-safe: Score may be called concurrently (the forward pass builds
/// a private tape; model parameters are only read). Single-threaded runs
/// are bit-reproducible: the score of (request_id, txn_node) is a pure
/// function of the checkpoint, the store contents, the fault plan, and the
/// service seed.
class ScoringService {
 public:
  /// None owned; all must outlive the service. `model` must be loaded /
  /// initialized for the store's feature_dim.
  ScoringService(const core::GnnModel* model,
                 const kv::FeatureStore* features, ServiceOptions options);

  /// Optional degraded scorer for ShedPolicy::kDegrade and GNN-path
  /// failures (not owned).
  void set_fallback(const baselines::RuleScorer* fallback) {
    fallback_ = fallback;
  }

  /// Scores one transaction under the service's default deadline.
  /// Error statuses: Unavailable (shed, replicas exhausted, or degraded
  /// budget spent) and DeadlineExceeded — both returned fast; a request
  /// never hangs past its deadline by more than one in-flight KV read.
  Result<ScoreResponse> Score(int64_t request_id, int32_t txn_node);
  /// Same with an explicit per-request budget (<= 0: no deadline).
  Result<ScoreResponse> Score(int64_t request_id, int32_t txn_node,
                              double deadline_s);

  /// Scores against one pinned published epoch: every KV read under this
  /// request (sampling walk, features, metadata) is issued at `epoch`, so
  /// the score is a pure function of that epoch's snapshot even while a
  /// writer advances the head concurrently. Callers pin the epoch first
  /// (kv::SnapshotHandle) so it cannot be compacted away mid-request;
  /// kv::kHeadEpoch reproduces Score exactly.
  Result<ScoreResponse> ScoreAt(int64_t request_id, int32_t txn_node,
                                double deadline_s, uint64_t epoch);

  /// Currently admitted requests (tests and load reporting).
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct InflightGuard;

  Result<ScoreResponse> FallbackScore(int32_t txn_node, double start_s,
                                      const Deadline& deadline,
                                      uint64_t epoch, const char* reason);
  Result<ScoreResponse> Finish(ScoreResponse resp, double start_s,
                               const Deadline& deadline);
  /// Reserves one degraded completion against max_degraded_frac.
  bool AdmitDegraded();
  void RecordClean();

  const core::GnnModel* model_;
  const kv::FeatureStore* features_;
  const baselines::RuleScorer* fallback_ = nullptr;
  ServiceOptions options_;
  Clock* clock_;

  std::atomic<int64_t> inflight_{0};
  std::mutex degraded_mu_;
  int64_t completed_ = 0;
  int64_t degraded_completed_ = 0;

  // serve/* metrics in the global registry.
  obs::Counter* requests_;
  obs::Counter* ok_;
  obs::Counter* shed_;
  obs::Counter* degraded_;
  obs::Counter* from_prefilter_;
  obs::Counter* unavailable_;
  obs::Counter* deadline_exceeded_;
  obs::Gauge* inflight_gauge_;
  obs::Histogram* score_s_;
  obs::Histogram* sample_s_;
  obs::Histogram* forward_s_;
  obs::Histogram* slack_after_sample_s_;
  obs::Histogram* deadline_slack_s_;
};

}  // namespace xfraud::serve

#endif  // XFRAUD_SERVE_SCORING_SERVICE_H_
