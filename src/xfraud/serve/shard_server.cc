#include "xfraud/serve/shard_server.h"

#include <memory>
#include <utility>
#include <vector>

#include "xfraud/common/fd.h"
#include "xfraud/common/frame.h"
#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/snapshot.h"
#include "xfraud/obs/registry.h"
#include "xfraud/serve/wire.h"

namespace xfraud::serve {

namespace {

/// Everything a live server needs beyond its options.
struct ServerState {
  ShardServerOptions options;
  Clock* clock = nullptr;
  uint32_t rank = 0;  // shard * num_replicas is unknown here; shard<<16|replica
  ScoringService* service = nullptr;
  fault::FaultInjector* injector = nullptr;
  ShardServerStats stats;
  int64_t score_requests_seen = 0;
};

Status ReplyScore(int fd, const ServerState& state, uint64_t seq,
                  const ScoreReplyWire& reply, const Deadline& deadline) {
  FrameHeader header;
  header.type = FrameType::kScoreReply;
  header.rank = state.rank;
  header.seq = seq;
  const std::string payload = EncodeScoreReply(reply);
  return dist::SendFrame(fd, header, payload.data(), payload.size(), deadline,
                         state.clock);
}

/// Handles one frame already read (header + CRC-verified payload) on `fd`.
/// Returns false when the connection should be dropped; sets *drain when the
/// server should exit its loop.
bool HandleFrame(int fd, ServerState* state, const FrameHeader& header,
                 const std::vector<unsigned char>& payload, bool* drain) {
  const Deadline io =
      Deadline::After(state->clock, state->options.io_timeout_s);
  switch (header.type) {
    case FrameType::kScoreRequest: {
      const int64_t request_index = state->score_requests_seen++;
      if (!state->options.suppress_kill && state->injector != nullptr &&
          state->injector->ShouldKillServer(state->options.replica,
                                            request_index)) {
        // The planned machine loss: die mid-request, reply to no one. The
        // supervisor's waitpid sees the signal and respawns this rank.
        fault::KillCurrentProcess();
      }
      Result<ScoreRequestWire> req =
          DecodeScoreRequest(payload.data(), payload.size());
      if (!req.ok()) {
        ScoreReplyWire reply;
        reply.status = req.status();
        return ReplyScore(fd, *state, header.seq, reply, io).ok();
      }
      ScoreReplyWire reply;
      if (req.value().deadline_s >= 0.0 && req.value().deadline_s <= 0.0) {
        // The budget was spent in flight; reject without touching the
        // store — a stale score must never be computed, let alone sent.
        ++state->stats.deadline_rejects;
        obs::Registry::Global()
            .counter("serve/server/deadline_rejects")
            ->Increment();
        reply.status = Status::DeadlineExceeded(
            "request deadline expired before the server saw it");
      } else {
        Result<ScoreResponse> scored = state->service->ScoreAt(
            static_cast<int64_t>(header.seq), req.value().txn_node,
            req.value().deadline_s, req.value().epoch);
        if (scored.ok()) {
          reply.response = scored.value();
        } else {
          reply.status = scored.status();
          if (scored.status().IsDeadlineExceeded()) {
            ++state->stats.deadline_rejects;
          }
        }
      }
      ++state->stats.requests_served;
      obs::Registry::Global().counter("serve/server/requests")->Increment();
      return ReplyScore(fd, *state, header.seq, reply, io).ok();
    }
    case FrameType::kHealth: {
      FrameHeader pong;
      pong.type = FrameType::kHealth;
      pong.rank = state->rank;
      pong.seq = header.seq;  // echo the nonce
      HealthWire health;
      health.generation = state->options.generation;
      health.requests_served = state->stats.requests_served;
      const std::string body = EncodeHealth(health);
      return dist::SendFrame(fd, pong, body.data(), body.size(), io,
                             state->clock)
          .ok();
    }
    case FrameType::kDrain: {
      FrameHeader ack;
      ack.type = FrameType::kDrain;
      ack.rank = state->rank;
      ack.seq = header.seq;
      // Best-effort ack; the drain proceeds even if the peer vanished.
      (void)dist::SendFrame(fd, ack, nullptr, 0, io, state->clock);
      *drain = true;
      return true;
    }
    default:
      // A frame type this server does not speak on an otherwise intact
      // stream: drop the connection, keep serving others.
      return false;
  }
}

}  // namespace

Result<ShardServerStats> RunShardServer(const ShardServerOptions& options) {
  Clock* clock = options.clock != nullptr ? options.clock : Clock::Real();

  // State recovery is nothing but WAL replay: Open truncates any torn tail
  // and rebuilds the index, and the latest published epoch pins the exact
  // snapshot the tier serves — a respawned server is bit-identical to its
  // predecessor.
  Result<std::unique_ptr<kv::LogKvStore>> store =
      kv::LogKvStore::Open(options.cell_path);
  if (!store.ok()) return store.status();
  Result<kv::SnapshotHandle> pin =
      kv::SnapshotHandle::PinLatest(store.value().get());
  if (!pin.ok()) return pin.status();

  kv::FeatureStore features(store.value().get());
  Result<int64_t> feature_dim = features.FeatureDim(pin.value().epoch());
  if (!feature_dim.ok()) return feature_dim.status();

  core::DetectorConfig config = options.detector;
  config.feature_dim = static_cast<int>(feature_dim.value());
  Rng model_rng(options.model_seed);
  core::XFraudDetector detector(config, &model_rng);

  ServiceOptions service_options = options.service;
  service_options.clock = clock;
  ScoringService service(&detector, &features, service_options);

  fault::FaultInjector injector(options.fault_plan);

  ServerState state;
  state.options = options;
  state.clock = clock;
  state.rank = static_cast<uint32_t>(options.shard) << 16 |
               static_cast<uint32_t>(options.replica);
  state.service = &service;
  state.injector = options.fault_plan.any() ? &injector : nullptr;

  Result<UniqueFd> listener = dist::ListenOn(options.endpoint, nullptr);
  if (!listener.ok()) return listener.status();

  std::vector<UniqueFd> conns;
  bool drain = false;
  while (!drain) {
    std::vector<int> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back(listener.value().get());
    for (const UniqueFd& c : conns) fds.push_back(c.get());
    const Deadline idle = Deadline::After(clock, options.idle_timeout_s);
    Result<int> ready = dist::WaitAnyReadable(fds, idle, clock);
    if (!ready.ok()) {
      if (ready.status().IsDeadlineExceeded()) {
        return Status::FailedPrecondition(
            "shard server idled out with no supervisor traffic");
      }
      return ready.status();
    }
    if (ready.value() == 0) {
      const Deadline accept_deadline =
          Deadline::After(clock, options.io_timeout_s);
      Result<UniqueFd> accepted = dist::AcceptWithDeadline(
          listener.value().get(), accept_deadline, clock);
      if (accepted.ok()) conns.push_back(std::move(accepted).value());
      continue;
    }
    const size_t conn_index = static_cast<size_t>(ready.value() - 1);
    const int fd = conns[conn_index].get();
    const Deadline io = Deadline::After(clock, options.io_timeout_s);
    Result<FrameHeader> header = dist::RecvFrameHeader(fd, io, clock);
    if (!header.ok()) {
      // EOF, reset, or a desynced stream: this connection is done.
      conns.erase(conns.begin() + static_cast<long>(conn_index));
      continue;
    }
    std::vector<unsigned char> payload;
    Status got =
        dist::RecvFramePayload(fd, header.value(), &payload, io, clock);
    if (got.IsCorruption()) {
      // Wire damage (satellite 1's bit flip lands here): the payload bytes
      // all arrived — the stream is still frame-aligned — but the CRC says
      // they are not the bytes the sender sealed. Refuse to act on them;
      // the seq-echoing Corruption reply tells the router to resend.
      ++state.stats.corrupt_frames_rejected;
      obs::Registry::Global()
          .counter("serve/server/corrupt_frames_rejected")
          ->Increment();
      ScoreReplyWire reply;
      reply.status = Status::Corruption("request payload failed CRC");
      if (!ReplyScore(fd, state, header.value().seq, reply, io).ok()) {
        conns.erase(conns.begin() + static_cast<long>(conn_index));
      }
      continue;
    }
    if (!got.ok()) {
      conns.erase(conns.begin() + static_cast<long>(conn_index));
      continue;
    }
    if (!HandleFrame(fd, &state, header.value(), payload, &drain)) {
      conns.erase(conns.begin() + static_cast<long>(conn_index));
    }
  }
  state.stats.drained = true;
  return state.stats;
}

}  // namespace xfraud::serve
