#ifndef XFRAUD_SERVE_SUPERVISOR_H_
#define XFRAUD_SERVE_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/common/fd.h"
#include "xfraud/common/status.h"
#include "xfraud/core/detector.h"
#include "xfraud/dist/rendezvous.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/serve/router.h"
#include "xfraud/serve/scoring_service.h"
#include "xfraud/serve/shard_server.h"

namespace xfraud::serve {

struct SupervisorOptions {
  /// Tier directory: holds the S×R cell WALs ("cell_<s>_<r>.log") and the
  /// servers' unix socket endpoints ("s<s>_r<r>.sock"). Created if missing.
  /// Keep it short — AF_UNIX paths cap around ~100 chars.
  std::string dir;
  int num_shards = 2;
  int num_replicas = 2;
  /// Detector shape + seed every server initializes from (feature_dim
  /// comes from the ingested cells); identical across servers by
  /// construction, which is what makes replica scores bit-identical.
  core::DetectorConfig detector;
  uint64_t model_seed = 7;
  ServiceOptions service;
  /// Chaos profile: kill_server / corrupt_frame bite in this tier.
  fault::FaultPlan plan;
  /// Re-forks allowed per server after signal deaths.
  int max_restarts_per_server = 2;
  /// Health ping cadence and how many consecutive ping failures make the
  /// supervisor SIGKILL a live-but-unresponsive server (the waitpid path
  /// then respawns it like any other signal death).
  double health_interval_s = 0.25;
  double health_timeout_s = 1.0;
  int health_failures_to_kill = 3;
  /// Forwarded into each ShardServerOptions.
  double server_io_timeout_s = 30.0;
  double server_idle_timeout_s = 600.0;
  /// Paces the monitor loop only; servers always run on real time in their
  /// own processes.
  Clock* clock = nullptr;
};

/// The serving tier's process supervisor (DESIGN.md §16): prepares the cell
/// WALs (ingest + one lockstep epoch publish through
/// stream::FanoutEpochSource), forks one shard-server process per grid
/// position, and babysits them — reaping signal deaths via waitpid, probing
/// liveness with kHealth pings, SIGKILLing the unresponsive, and respawning
/// the dead with the planned kill suppressed so a chaos kill fires exactly
/// once. A respawned server recovers purely from its WAL at the pinned
/// epoch, so the tier's scores are unchanged across any number of deaths.
///
/// State machine per server:
///   FORKED -> SERVING -(SIGKILL/crash)-> DEAD -(respawn, budget left)->
///   SERVING -(budget spent)-> FAILED;  SERVING -(Stop: drain ack)-> DRAINED
class Supervisor {
 public:
  /// Ingests `g` into every cell, publishes the serving epoch, forks the
  /// servers, and starts the monitor. `g` is only used before the forks —
  /// children never see it; they replay their WALs.
  static Result<std::unique_ptr<Supervisor>> Start(
      const graph::HeteroGraph& g, const SupervisorOptions& options);

  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Orderly shutdown: stops the monitor, sends every live server kDrain,
  /// awaits its ack and exit, SIGKILLs stragglers. Idempotent.
  Status Stop();

  /// Router configuration for this tier: endpoints, serving epoch, clock,
  /// and the supervisor-owned wire-fault injector.
  RouterOptions MakeRouterOptions() const;

  /// The epoch every request is served at (published during Start).
  uint64_t epoch() const { return epoch_; }
  int num_shards() const { return options_.num_shards; }
  int num_replicas() const { return options_.num_replicas; }
  dist::Endpoint endpoint(int shard, int replica) const;
  pid_t server_pid(int shard, int replica) const;

  /// Chaos observability: total re-forks, and the grid index
  /// (shard * R + replica) of each observed signal death in order.
  int restarts() const;
  std::vector<int> kills_observed() const;

  /// The router-side fault injector holding the tier's deterministic wire
  /// frame counter (null plan -> still valid, injects nothing).
  fault::FaultInjector* injector() const { return injector_.get(); }

 private:
  struct Server {
    pid_t pid = -1;
    int restarts = 0;
    uint64_t generation = 1;
    int health_failures = 0;
    UniqueFd health_conn;
    uint64_t next_nonce = 0;
    bool failed = false;  // restart budget spent
  };

  explicit Supervisor(SupervisorOptions options);
  Status Init(const graph::HeteroGraph& g);
  ShardServerOptions ServerOptions(int shard, int replica,
                                   uint64_t generation,
                                   bool suppress_kill) const;
  /// Forks grid slot `index`; child runs RunShardServer and _exits.
  Result<pid_t> ForkServer(int index, uint64_t generation,
                           bool suppress_kill);
  void MonitorLoop();
  /// One waitpid sweep; respawns signal deaths. Returns true if any child
  /// state changed.
  bool ReapOnce();
  void PingServers();

  SupervisorOptions options_;
  Clock* clock_;
  uint64_t epoch_ = 0;
  std::unique_ptr<fault::FaultInjector> injector_;

  mutable std::mutex mu_;
  std::vector<Server> servers_;  // [shard * num_replicas + replica]
  int restarts_total_ = 0;
  std::vector<int> kills_observed_;

  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
};

}  // namespace xfraud::serve

#endif  // XFRAUD_SERVE_SUPERVISOR_H_
