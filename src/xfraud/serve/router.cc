#include "xfraud/serve/router.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "xfraud/common/frame.h"
#include "xfraud/common/logging.h"
#include "xfraud/common/rng.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/obs/registry.h"
#include "xfraud/serve/wire.h"

namespace xfraud::serve {

namespace {
constexpr uint64_t kRouterJitterTag = 0x524F5554ULL;  // "ROUT"
}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()),
      backends_(static_cast<size_t>(options_.num_shards) *
                static_cast<size_t>(options_.num_replicas)) {
  XF_CHECK(options_.num_shards >= 1 && options_.num_replicas >= 1);
  XF_CHECK(options_.endpoints.size() == backends_.size());
  auto& r = obs::Registry::Global();
  requests_ = r.counter("serve/router/requests");
  ok_ = r.counter("serve/router/ok");
  failovers_ = r.counter("serve/router/failovers");
  hedged_ = r.counter("serve/router/hedged");
  hedge_wins_ = r.counter("serve/router/hedge_wins");
  breaker_opens_ = r.counter("serve/router/breaker_opens");
  corrupt_retries_ = r.counter("serve/router/corrupt_retries");
  redials_ = r.counter("serve/router/redials");
}

Router::~Router() = default;

void Router::CloseAll() {
  for (Backend& b : backends_) b.conn.Reset();
}

bool Router::BreakerOpen(const Backend& b) const {
  return b.open_until_s > clock_->NowSeconds();
}

void Router::MarkFailure(Backend* b) {
  ++b->consecutive_failures;
  if (b->consecutive_failures >= options_.breaker_threshold) {
    // Open (or re-extend) the breaker; after the cooloff the next request
    // is the half-open probe.
    b->open_until_s = clock_->NowSeconds() + options_.breaker_cooloff_s;
    breaker_opens_->Increment();
  }
}

void Router::MarkSuccess(Backend* b) {
  b->consecutive_failures = 0;
  b->open_until_s = 0.0;
}

Status Router::EnsureConnected(int shard, int replica,
                               const Deadline& deadline) {
  Backend& b = backend(shard, replica);
  if (b.conn.valid()) return Status::OK();
  const dist::Endpoint& ep =
      options_.endpoints[static_cast<size_t>(shard) * options_.num_replicas +
                         static_cast<size_t>(replica)];
  // A respawning server needs a moment to replay its WAL and rebind; dial
  // refusals are IoError and retried with backoff inside the budget.
  RetryPolicy policy = options_.retry;
  policy.clock = clock_;
  policy.deadline_s =
      std::min(options_.connect_timeout_s, deadline.RemainingSeconds());
  const uint64_t seed = Rng::StreamSeed(
      kRouterJitterTag, static_cast<uint64_t>(shard) << 16 |
                            static_cast<uint64_t>(replica));
  Status dialed = RetryWithBackoff(policy, seed, [&]() -> Status {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("router: dial budget spent");
    }
    const Deadline one = Deadline::After(
        clock_, std::min(options_.connect_timeout_s,
                         std::max(0.0, deadline.RemainingSeconds())));
    Result<UniqueFd> fd = dist::DialEndpoint(ep, one, clock_);
    if (!fd.ok()) return fd.status();
    b.conn = std::move(fd).value();
    return Status::OK();
  });
  if (dialed.ok()) redials_->Increment();
  return dialed;
}

Status Router::SendRequest(int shard, int replica, int64_t request_id,
                           int32_t txn_node, const Deadline& deadline) {
  Backend& b = backend(shard, replica);
  ScoreRequestWire req;
  req.epoch = options_.epoch;
  // Deadline propagation: the frame carries the *remaining* budget at send
  // time (clamped at zero — an already-expired request still travels so
  // the server can reject it authoritatively, but it can never be scored).
  req.deadline_s = deadline.unlimited()
                       ? -1.0
                       : std::max(0.0, deadline.RemainingSeconds());
  req.txn_node = txn_node;
  const std::string payload = EncodeScoreRequest(req);

  FrameHeader header;
  header.type = FrameType::kScoreRequest;
  header.rank = static_cast<uint32_t>(shard);
  header.seq = static_cast<uint64_t>(request_id);

  int64_t corrupt_byte = -1;
  if (options_.injector != nullptr) {
    const int64_t frame_index = options_.injector->NextWireFrame();
    if (options_.injector->ShouldCorruptFrame(frame_index)) {
      corrupt_byte =
          options_.injector->CorruptByteFor(frame_index, payload.size());
    }
  }
  return dist::SendFrameCorrupting(b.conn.get(), header, payload.data(),
                                   payload.size(), corrupt_byte, deadline,
                                   clock_);
}

Result<ScoreResponse> Router::Attempt(int shard, int replica,
                                      int hedge_replica, int64_t request_id,
                                      int32_t txn_node,
                                      const Deadline& deadline,
                                      bool* retryable) {
  *retryable = true;
  Backend& primary = backend(shard, replica);
  Status conn = EnsureConnected(shard, replica, deadline);
  if (!conn.ok()) {
    MarkFailure(&primary);
    return conn;
  }
  Status sent = SendRequest(shard, replica, request_id, txn_node, deadline);
  if (!sent.ok()) {
    MarkFailure(&primary);
    primary.conn.Reset();
    return sent;
  }

  Backend* winner = &primary;
  Backend* loser = nullptr;
  if (hedge_replica >= 0 && options_.hedge_delay_s >= 0.0) {
    const Deadline hedge_wait = Deadline::After(
        clock_, std::max(0.0, std::min(options_.hedge_delay_s,
                                       deadline.RemainingSeconds())));
    Result<int> first =
        dist::WaitAnyReadable({primary.conn.get()}, hedge_wait, clock_);
    if (!first.ok() && first.status().IsDeadlineExceeded() &&
        !deadline.Expired()) {
      // Primary is slow but the request still has budget: duplicate it onto
      // the backup and take whichever replies first. Scores are
      // bit-identical across replicas, so the race has one right answer.
      hedged_->Increment();
      Backend& backup = backend(shard, hedge_replica);
      if (EnsureConnected(shard, hedge_replica, deadline).ok() &&
          SendRequest(shard, hedge_replica, request_id, txn_node, deadline)
              .ok()) {
        Result<int> race = dist::WaitAnyReadable(
            {primary.conn.get(), backup.conn.get()}, deadline, clock_);
        if (race.ok() && race.value() == 1) {
          winner = &backup;
          loser = &primary;
          hedge_wins_->Increment();
        } else {
          loser = &backup;
        }
      } else {
        backup.conn.Reset();
      }
    }
  }

  std::vector<unsigned char> payload;
  Result<FrameHeader> header =
      dist::RecvFrameHeader(winner->conn.get(), deadline, clock_);
  Status got = header.ok()
                   ? dist::RecvFramePayload(winner->conn.get(), header.value(),
                                            &payload, deadline, clock_)
                   : header.status();
  if (loser != nullptr) {
    // The slower twin still owes a reply on this connection; drop it rather
    // than pair a stale reply with a future request.
    loser->conn.Reset();
  }
  if (!got.ok()) {
    winner->conn.Reset();
    if (got.IsDeadlineExceeded()) return got;
    // EOF/reset mid-request: the primary died with our request in flight —
    // exactly the failover case. The next attempt tries a replica.
    MarkFailure(winner);
    return got;
  }
  if (header.value().type != FrameType::kScoreReply ||
      header.value().seq != static_cast<uint64_t>(request_id)) {
    winner->conn.Reset();
    return Status::Corruption("router: reply frame does not match request");
  }
  Result<ScoreReplyWire> reply =
      DecodeScoreReply(payload.data(), payload.size());
  if (!reply.ok()) {
    winner->conn.Reset();
    return reply.status();
  }
  MarkSuccess(winner);
  if (reply.value().status.ok()) {
    return reply.value().response;
  }
  if (reply.value().status.IsCorruption()) {
    // The server rejected OUR request frame as CRC-damaged (satellite 2's
    // corrupt_frame). The connection is healthy; just resend.
    corrupt_retries_->Increment();
    return reply.value().status;
  }
  // An application-level verdict (shed, deadline, not-found) from a healthy
  // server: retrying elsewhere would give the same answer.
  *retryable = false;
  return reply.value().status;
}

Result<ScoreResponse> Router::Score(int64_t request_id, int32_t txn_node) {
  return Score(request_id, txn_node, options_.deadline_s);
}

Result<ScoreResponse> Router::Score(int64_t request_id, int32_t txn_node,
                                    double deadline_s) {
  requests_->Increment();
  const int mod = options_.num_shards;
  const int shard = static_cast<int>(((txn_node % mod) + mod) % mod);
  const Deadline deadline = deadline_s > 0.0
                                ? Deadline::After(clock_, deadline_s)
                                : Deadline();
  Status last = Status::Unavailable("router: no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("router: request budget spent after " +
                                      std::to_string(attempt) + " attempts");
    }
    // Replica rotation, skipping open breakers when an alternative exists;
    // with every breaker open the rotation slot becomes the half-open probe.
    int replica = attempt % options_.num_replicas;
    for (int k = 0; k < options_.num_replicas; ++k) {
      const int candidate = (attempt + k) % options_.num_replicas;
      if (!BreakerOpen(backend(shard, candidate))) {
        replica = candidate;
        break;
      }
    }
    int hedge_replica = -1;
    if (options_.hedge_delay_s >= 0.0 && options_.num_replicas > 1) {
      for (int k = 1; k < options_.num_replicas; ++k) {
        const int candidate = (replica + k) % options_.num_replicas;
        if (!BreakerOpen(backend(shard, candidate))) {
          hedge_replica = candidate;
          break;
        }
      }
    }
    if (attempt > 0 && !last.IsCorruption()) failovers_->Increment();
    bool retryable = true;
    Result<ScoreResponse> scored = Attempt(shard, replica, hedge_replica,
                                           request_id, txn_node, deadline,
                                           &retryable);
    if (scored.ok()) {
      ok_->Increment();
      return scored;
    }
    last = scored.status();
    if (last.IsDeadlineExceeded() || !retryable) return last;
    // Backoff before the next attempt, clamped to the remaining wire
    // deadline so a sleep can never outlive the budget it retries under.
    RetryPolicy policy = options_.retry;
    policy.clock = clock_;
    internal::BackoffAndSleep(
        policy,
        Rng::StreamSeed(static_cast<uint64_t>(request_id), kRouterJitterTag),
        attempt + 2, deadline.RemainingSeconds());
  }
  return Status::Unavailable("router: attempts exhausted; last error: " +
                             last.ToString());
}

}  // namespace xfraud::serve
