#include "xfraud/serve/topology.h"

#include "xfraud/common/logging.h"
#include "xfraud/kv/feature_store.h"

namespace xfraud::serve {

ServingTopology::ServingTopology(TopologyOptions options)
    : options_(options) {
  XF_CHECK_GT(options_.num_shards, 0);
  XF_CHECK_GT(options_.num_replicas, 0);
  const int S = options_.num_shards;
  const int R = options_.num_replicas;
  Clock* clock =
      options_.clock != nullptr ? options_.clock : Clock::Real();
  if (options_.replication.clock == nullptr) {
    options_.replication.clock = clock;
  }

  cells_.reserve(static_cast<size_t>(S) * R);
  for (int i = 0; i < S * R; ++i) {
    cells_.push_back(std::make_unique<kv::MemKvStore>());
  }
  if (options_.plan.any()) {
    injector_ = std::make_unique<fault::FaultInjector>(options_.plan);
    faulty_.reserve(cells_.size());
  }

  shards_.reserve(S);
  for (int s = 0; s < S; ++s) {
    std::vector<kv::KvStore*> replicas;
    replicas.reserve(R);
    for (int r = 0; r < R; ++r) {
      kv::KvStore* cell = cells_[static_cast<size_t>(s) * R + r].get();
      if (injector_ != nullptr) {
        faulty_.push_back(std::make_unique<fault::FaultyKvStore>(
            cell, injector_.get(), r, s, clock));
        cell = faulty_.back().get();
      }
      replicas.push_back(cell);
    }
    shards_.push_back(std::make_unique<kv::ReplicatedKvStore>(
        std::move(replicas), options_.replication));
  }

  std::vector<kv::KvStore*> shard_ptrs;
  shard_ptrs.reserve(S);
  for (const auto& shard : shards_) shard_ptrs.push_back(shard.get());
  serving_ = std::make_unique<kv::ShardedKvStore>(std::move(shard_ptrs));

  ingest_views_.reserve(R);
  for (int r = 0; r < R; ++r) {
    std::vector<kv::KvStore*> column;
    column.reserve(S);
    for (int s = 0; s < S; ++s) {
      column.push_back(cells_[static_cast<size_t>(s) * R + r].get());
    }
    ingest_views_.push_back(
        std::make_unique<kv::ShardedKvStore>(std::move(column)));
  }
}

Status ServingTopology::Ingest(const graph::HeteroGraph& g) {
  for (const auto& view : ingest_views_) {
    kv::FeatureStore ingest(view.get());
    XF_RETURN_IF_ERROR(ingest.Ingest(g));
  }
  return Status::OK();
}

}  // namespace xfraud::serve
