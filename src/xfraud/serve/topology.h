#ifndef XFRAUD_SERVE_TOPOLOGY_H_
#define XFRAUD_SERVE_TOPOLOGY_H_

#include <memory>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/fault/faulty_kv.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/kv/replicated_kv.h"
#include "xfraud/kv/sharded_kv.h"

namespace xfraud::serve {

struct TopologyOptions {
  int num_shards = 4;
  int num_replicas = 2;
  /// Failover/hedging/breaker behavior of each shard's replica group. Its
  /// clock defaults to `clock` below when unset.
  kv::ReplicationOptions replication;
  /// Chaos profile applied per replica cell (kill_replica / kill_shard /
  /// slow_replica plus the randomized per-op faults). An inject-nothing
  /// plan skips the fault layer entirely.
  fault::FaultPlan plan;
  /// Time source for injected latency and replication; nullptr means
  /// Clock::Real().
  Clock* clock = nullptr;
};

/// Owns the full serving storage stack of paper §3.3.3 / Appendix C —
/// S shards × R replicas of in-memory cells — wired as:
///
///   serving():  ShardedKvStore
///                 └─ per shard: ReplicatedKvStore (failover/hedge/breaker)
///                      └─ per replica: [FaultyKvStore →] MemKvStore
///
/// plus R fault-free per-replica ingest views (a ShardedKvStore over each
/// replica column) so Ingest() populates every replica identically without
/// the chaos layer or the replicated write path biting during setup.
class ServingTopology {
 public:
  explicit ServingTopology(TopologyOptions options);

  /// The hardened read path: hand this to a FeatureStore for serving.
  kv::KvStore* serving() const { return serving_.get(); }

  /// Writes the graph into every replica of every shard (bypassing fault
  /// injection — chaos applies to serving reads, not test setup).
  Status Ingest(const graph::HeteroGraph& g);

  /// Null when the plan injects nothing.
  fault::FaultInjector* injector() const { return injector_.get(); }

  kv::ReplicatedKvStore* shard(size_t s) const { return shards_[s].get(); }
  int num_shards() const { return options_.num_shards; }
  int num_replicas() const { return options_.num_replicas; }

 private:
  TopologyOptions options_;
  std::vector<std::unique_ptr<kv::MemKvStore>> cells_;  // [shard*R + replica]
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<fault::FaultyKvStore>> faulty_;
  std::vector<std::unique_ptr<kv::ReplicatedKvStore>> shards_;
  std::unique_ptr<kv::ShardedKvStore> serving_;
  std::vector<std::unique_ptr<kv::ShardedKvStore>> ingest_views_;
};

}  // namespace xfraud::serve

#endif  // XFRAUD_SERVE_TOPOLOGY_H_
