#include "xfraud/serve/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <utility>

#include "xfraud/common/frame.h"
#include "xfraud/common/logging.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/obs/registry.h"
#include "xfraud/serve/wire.h"
#include "xfraud/stream/streaming_topology.h"

namespace xfraud::serve {

namespace {

std::string CellPath(const std::string& dir, int shard, int replica) {
  return dir + "/cell_" + std::to_string(shard) + "_" +
         std::to_string(replica) + ".log";
}

std::string SocketPath(const std::string& dir, int shard, int replica) {
  return dir + "/s" + std::to_string(shard) + "_r" +
         std::to_string(replica) + ".sock";
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()) {}

Result<std::unique_ptr<Supervisor>> Supervisor::Start(
    const graph::HeteroGraph& g, const SupervisorOptions& options) {
  XF_CHECK(options.num_shards >= 1 && options.num_replicas >= 1);
  XF_CHECK(!options.dir.empty());
  // Private ctor keeps Start the only entry point; make_unique cannot reach
  // it, so the factory owns the one naked new.
  // xfraud-lint: allow(no-naked-new)
  std::unique_ptr<Supervisor> sup(new Supervisor(options));
  Status init = sup->Init(g);
  if (!init.ok()) {
    (void)sup->Stop();  // reap anything half-started
    return init;
  }
  return sup;
}

Status Supervisor::Init(const graph::HeteroGraph& g) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("cannot create serving tier dir " + options_.dir +
                           ": " + ec.message());
  }

  // Tier preparation: every cell gets the full graph in its own WAL, then
  // one lockstep publish through the streaming tier's FanoutEpochSource
  // commits the serving epoch on every cell atomically-enough that a crash
  // here is recoverable (DESIGN.md §15's grid-publish invariants).
  {
    std::vector<std::unique_ptr<kv::LogKvStore>> cells;
    std::vector<kv::LogKvStore*> cell_ptrs;
    for (int s = 0; s < options_.num_shards; ++s) {
      for (int r = 0; r < options_.num_replicas; ++r) {
        Result<std::unique_ptr<kv::LogKvStore>> cell =
            kv::LogKvStore::Open(CellPath(options_.dir, s, r));
        if (!cell.ok()) return cell.status();
        kv::FeatureStore features(cell.value().get());
        // Sanctioned bulk load: this is the tier's one-time cell
        // preparation, committed by the FanoutEpochSource publish below —
        // after the forks, only the WAL is the source of truth.
        // xfraud-analyze: allow(ingest-bypass)
        XF_RETURN_IF_ERROR(features.Ingest(g));
        cell_ptrs.push_back(cell.value().get());
        cells.push_back(std::move(cell).value());
      }
    }
    stream::FanoutEpochSource epochs(cell_ptrs);
    Result<uint64_t> published = epochs.PublishEpoch();
    if (!published.ok()) return published.status();
    epoch_ = published.value();
    // Cells close here, before any fork: children must own their WAL fds
    // exclusively, exactly as a respawn after SIGKILL would.
  }

  injector_ = std::make_unique<fault::FaultInjector>(options_.plan);

  const int world = options_.num_shards * options_.num_replicas;
  servers_.resize(static_cast<size_t>(world));
  for (int i = 0; i < world; ++i) {
    Result<pid_t> pid = ForkServer(i, /*generation=*/1,
                                   /*suppress_kill=*/false);
    if (!pid.ok()) return pid.status();
    servers_[static_cast<size_t>(i)].pid = pid.value();
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

ShardServerOptions Supervisor::ServerOptions(int shard, int replica,
                                             uint64_t generation,
                                             bool suppress_kill) const {
  ShardServerOptions server;
  server.shard = shard;
  server.replica = replica;
  server.cell_path = CellPath(options_.dir, shard, replica);
  server.endpoint.kind = dist::Endpoint::Kind::kUnix;
  server.endpoint.path = SocketPath(options_.dir, shard, replica);
  server.detector = options_.detector;
  server.model_seed = options_.model_seed;
  server.service = options_.service;
  // Children run on real time regardless of the supervisor's clock.
  server.service.clock = nullptr;
  server.clock = nullptr;
  server.fault_plan = options_.plan;
  server.suppress_kill = suppress_kill;
  server.generation = generation;
  server.io_timeout_s = options_.server_io_timeout_s;
  server.idle_timeout_s = options_.server_idle_timeout_s;
  return server;
}

Result<pid_t> Supervisor::ForkServer(int index, uint64_t generation,
                                     bool suppress_kill) {
  const int shard = index / options_.num_replicas;
  const int replica = index % options_.num_replicas;
  const ShardServerOptions server =
      ServerOptions(shard, replica, generation, suppress_kill);
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError("fork failed for shard server " +
                           std::to_string(index));
  }
  if (pid != 0) {
    obs::Registry::Global().counter("serve/supervisor/forks")->Increment();
    return pid;
  }
  // Child: drop inherited supervisor-side connections, run the server to
  // drain, and leave through _exit so no parent state runs twice.
  for (Server& s : servers_) s.health_conn.Reset();
  Result<ShardServerStats> run = RunShardServer(server);
  if (!run.ok()) {
    XF_LOG(Error) << "shard server " << shard << "/" << replica
                  << " failed: " << run.status().message();
    ::_exit(3);
  }
  ::_exit(0);
}

bool Supervisor::ReapOnce() {
  int status = 0;
  pid_t pid = ::waitpid(-1, &status, WNOHANG);
  if (pid <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  int index = -1;
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i].pid == pid) index = static_cast<int>(i);
  }
  if (index < 0) return true;  // not one of ours
  Server& server = servers_[static_cast<size_t>(index)];
  server.pid = -1;
  server.health_conn.Reset();
  server.health_failures = 0;
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return true;  // orderly drain (normally during Stop)
  }
  if (WIFSIGNALED(status)) {
    obs::Registry::Global()
        .counter("serve/supervisor/signal_deaths")
        ->Increment();
    kills_observed_.push_back(index);
    if (stopping_.load()) return true;
    if (server.restarts >= options_.max_restarts_per_server) {
      XF_LOG(Error) << "shard server " << index
                    << " exhausted its restart budget";
      server.failed = true;
      return true;
    }
    ++server.restarts;
    ++restarts_total_;
    ++server.generation;
    XF_LOG(Info) << "supervisor respawning shard server " << index
                 << " after signal " << WTERMSIG(status) << " (restart "
                 << server.restarts << ", generation " << server.generation
                 << ")";
    obs::Registry::Global().counter("serve/supervisor/respawns")->Increment();
    // The respawn suppresses the planned kill: a chaos kill fires exactly
    // once, and the new process recovers from the WAL at the pinned epoch.
    Result<pid_t> again = ForkServer(index, server.generation,
                                     /*suppress_kill=*/true);
    if (!again.ok()) {
      XF_LOG(Error) << "supervisor could not respawn server " << index
                    << ": " << again.status().message();
      server.failed = true;
      return true;
    }
    server.pid = again.value();
    return true;
  }
  // A clean-but-failing exit is a server-reported error (bad WAL, bind
  // failure): restarting would loop on the same failure.
  XF_LOG(Error) << "shard server " << index << " exited with code "
                << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  server.failed = true;
  return true;
}

void Supervisor::PingServers() {
  for (size_t i = 0; i < servers_.size(); ++i) {
    pid_t pid;
    uint64_t nonce;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Server& s = servers_[i];
      if (s.pid <= 0 || s.failed) continue;
      pid = s.pid;
      nonce = ++s.next_nonce;
    }
    const int shard = static_cast<int>(i) / options_.num_replicas;
    const int replica = static_cast<int>(i) % options_.num_replicas;
    const Deadline deadline =
        Deadline::After(clock_, options_.health_timeout_s);
    // One ping: reuse (or dial) the health connection, send kHealth, expect
    // the nonce echoed back. Any miss counts; K consecutive misses on a
    // still-live pid earn a real SIGKILL — the waitpid sweep then treats it
    // like any other machine loss and respawns.
    bool ok = [&] {
      std::lock_guard<std::mutex> lock(mu_);
      Server& s = servers_[i];
      if (s.pid != pid) return true;  // reaped meanwhile; skip this round
      if (!s.health_conn.valid()) {
        dist::Endpoint ep;
        ep.kind = dist::Endpoint::Kind::kUnix;
        ep.path = SocketPath(options_.dir, shard, replica);
        Result<UniqueFd> conn = dist::DialEndpoint(ep, deadline, clock_);
        if (!conn.ok()) return false;
        s.health_conn = std::move(conn).value();
      }
      FrameHeader ping;
      ping.type = FrameType::kHealth;
      ping.seq = nonce;
      if (!dist::SendFrame(s.health_conn.get(), ping, nullptr, 0, deadline,
                           clock_)
               .ok()) {
        s.health_conn.Reset();
        return false;
      }
      Result<FrameHeader> pong =
          dist::RecvFrameHeader(s.health_conn.get(), deadline, clock_);
      std::vector<unsigned char> body;
      if (!pong.ok() ||
          !dist::RecvFramePayload(s.health_conn.get(), pong.value(), &body,
                                  deadline, clock_)
               .ok() ||
          pong.value().type != FrameType::kHealth ||
          pong.value().seq != nonce) {
        s.health_conn.Reset();
        return false;
      }
      return true;
    }();
    std::lock_guard<std::mutex> lock(mu_);
    Server& s = servers_[i];
    if (s.pid != pid) continue;
    if (ok) {
      s.health_failures = 0;
      continue;
    }
    ++s.health_failures;
    if (s.health_failures >= options_.health_failures_to_kill) {
      XF_LOG(Info) << "supervisor SIGKILLing unresponsive shard server "
                   << i << " after " << s.health_failures
                   << " failed health pings";
      obs::Registry::Global()
          .counter("serve/supervisor/health_kills")
          ->Increment();
      ::kill(pid, SIGKILL);
      s.health_failures = 0;
    }
  }
}

void Supervisor::MonitorLoop() {
  double last_ping_s = clock_->NowSeconds();
  while (!stopping_.load()) {
    while (ReapOnce()) {
    }
    const double now_s = clock_->NowSeconds();
    if (now_s - last_ping_s >= options_.health_interval_s) {
      last_ping_s = now_s;
      PingServers();
    }
    clock_->SleepFor(0.005);
  }
}

Status Supervisor::Stop() {
  if (stopped_) return Status::OK();
  stopped_ = true;
  stopping_.store(true);
  if (monitor_.joinable()) monitor_.join();

  Status worst = Status::OK();
  for (size_t i = 0; i < servers_.size(); ++i) {
    Server& s = servers_[i];
    if (s.pid <= 0) continue;
    const int shard = static_cast<int>(i) / options_.num_replicas;
    const int replica = static_cast<int>(i) % options_.num_replicas;
    const Deadline deadline = Deadline::After(clock_, 5.0);
    // Orderly exit: drain, await the ack and the clean exit.
    dist::Endpoint ep;
    ep.kind = dist::Endpoint::Kind::kUnix;
    ep.path = SocketPath(options_.dir, shard, replica);
    bool drained = false;
    Result<UniqueFd> conn = dist::DialEndpoint(ep, deadline, clock_);
    if (conn.ok()) {
      FrameHeader drain;
      drain.type = FrameType::kDrain;
      if (dist::SendFrame(conn.value().get(), drain, nullptr, 0, deadline,
                          clock_)
              .ok()) {
        Result<FrameHeader> ack =
            dist::RecvFrameHeader(conn.value().get(), deadline, clock_);
        drained = ack.ok() && ack.value().type == FrameType::kDrain;
      }
    }
    int status = 0;
    pid_t reaped = 0;
    while ((reaped = ::waitpid(s.pid, &status, WNOHANG)) == 0 &&
           !deadline.Expired()) {
      clock_->SleepFor(0.005);
    }
    if (reaped != s.pid) {
      // Straggler (or the drain never landed): a real SIGKILL ends it.
      ::kill(s.pid, SIGKILL);
      (void)::waitpid(s.pid, &status, 0);
    } else if (!drained && worst.ok()) {
      worst = Status::Internal("shard server " + std::to_string(i) +
                               " exited without acking drain");
    }
    s.pid = -1;
    s.health_conn.Reset();
  }
  return worst;
}

Supervisor::~Supervisor() { (void)Stop(); }

RouterOptions Supervisor::MakeRouterOptions() const {
  RouterOptions router;
  router.num_shards = options_.num_shards;
  router.num_replicas = options_.num_replicas;
  for (int s = 0; s < options_.num_shards; ++s) {
    for (int r = 0; r < options_.num_replicas; ++r) {
      router.endpoints.push_back(endpoint(s, r));
    }
  }
  router.epoch = epoch_;
  router.deadline_s = options_.service.deadline_s;
  router.injector = injector_.get();
  router.clock = options_.clock;
  return router;
}

dist::Endpoint Supervisor::endpoint(int shard, int replica) const {
  dist::Endpoint ep;
  ep.kind = dist::Endpoint::Kind::kUnix;
  ep.path = SocketPath(options_.dir, shard, replica);
  return ep;
}

pid_t Supervisor::server_pid(int shard, int replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return servers_[static_cast<size_t>(shard) * options_.num_replicas +
                  static_cast<size_t>(replica)]
      .pid;
}

int Supervisor::restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_total_;
}

std::vector<int> Supervisor::kills_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kills_observed_;
}

}  // namespace xfraud::serve
