#ifndef XFRAUD_SERVE_ROUTER_H_
#define XFRAUD_SERVE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/common/fd.h"
#include "xfraud/common/retry.h"
#include "xfraud/common/status.h"
#include "xfraud/dist/rendezvous.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/obs/metrics.h"
#include "xfraud/serve/scoring_service.h"

namespace xfraud::serve {

struct RouterOptions {
  int num_shards = 2;
  int num_replicas = 2;
  /// Shard-server endpoints, indexed [shard * num_replicas + replica].
  std::vector<dist::Endpoint> endpoints;
  /// Published KV epoch stamped into every request; all servers pinned it
  /// at startup, so every score is a pure function of this snapshot.
  uint64_t epoch = 0;
  /// Default per-request wall budget; <= 0 disables deadlines. The
  /// *remaining* budget travels in each request frame, so a server never
  /// scores a request whose caller has already given up on it.
  double deadline_s = 0.25;
  double connect_timeout_s = 5.0;
  /// Hedge a slow primary read onto a backup replica after this long
  /// (< 0 disables hedging — the safe default, since a hedge costs a
  /// duplicate score on the backup).
  double hedge_delay_s = -1.0;
  /// Consecutive failures that open a backend's circuit breaker, and how
  /// long it stays open before a half-open probe is allowed.
  int breaker_threshold = 3;
  double breaker_cooloff_s = 0.05;
  /// Sends per request (across failover and corruption retries) before the
  /// router gives up with Unavailable.
  int max_attempts = 8;
  /// Backoff between failover attempts; each sleep is clamped to the
  /// request's remaining wire deadline so a retry can never outlive the
  /// budget it is retrying under.
  RetryPolicy retry{.max_attempts = 8,
                    .initial_backoff_s = 0.001,
                    .max_backoff_s = 0.05,
                    .deadline_s = 60.0};
  /// Wire-fault source (corrupt_frame; not owned, may be null). The router
  /// is the tier's only frame *sender* on the request path, so it owns the
  /// deterministic frame count the plan's index refers to.
  fault::FaultInjector* injector = nullptr;
  Clock* clock = nullptr;
};

/// The serving tier's frontend (DESIGN.md §16): routes each request to its
/// shard (txn_node % num_shards), with per-process circuit breakers,
/// deadline propagation on the wire, hedged reads against a backup replica,
/// and failover to a replica process when the primary dies mid-request —
/// the cross-process analogue of kv::ReplicatedKvStore's read path.
///
/// Not thread-safe: backends hold cached connections with in-flight
/// request/reply pairing. Use one Router per thread (scores are
/// bit-identical across routers, so this costs only sockets).
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Scores under the default deadline. Error statuses mirror
  /// ScoringService::Score, plus Unavailable when every replica of the
  /// shard is dead or breaker-open past the attempt budget.
  Result<ScoreResponse> Score(int64_t request_id, int32_t txn_node);
  /// Same with an explicit budget (<= 0: no deadline).
  Result<ScoreResponse> Score(int64_t request_id, int32_t txn_node,
                              double deadline_s);

  /// Drops every cached connection (they redial lazily). The supervisor's
  /// respawn path does not need this — a dead server's connection fails the
  /// next send and redials — but tests use it to force cold paths.
  void CloseAll();

 private:
  struct Backend {
    UniqueFd conn;
    int consecutive_failures = 0;
    /// Breaker: open (skip this backend) until the clock passes this.
    double open_until_s = 0.0;
  };

  Backend& backend(int shard, int replica) {
    return backends_[static_cast<size_t>(shard) * options_.num_replicas +
                     static_cast<size_t>(replica)];
  }
  bool BreakerOpen(const Backend& b) const;
  void MarkFailure(Backend* b);
  void MarkSuccess(Backend* b);
  /// Dials if not connected; IoError/Unavailable on failure.
  Status EnsureConnected(int shard, int replica, const Deadline& deadline);
  /// Sends one score request (applying any planned wire corruption).
  Status SendRequest(int shard, int replica, int64_t request_id,
                     int32_t txn_node, const Deadline& deadline);
  /// One full request/reply attempt against (shard, replica), hedging onto
  /// `hedge_replica` (< 0: none) if the primary is slow.
  Result<ScoreResponse> Attempt(int shard, int replica, int hedge_replica,
                                int64_t request_id, int32_t txn_node,
                                const Deadline& deadline, bool* retryable);

  RouterOptions options_;
  Clock* clock_;
  std::vector<Backend> backends_;

  obs::Counter* requests_;
  obs::Counter* ok_;
  obs::Counter* failovers_;
  obs::Counter* hedged_;
  obs::Counter* hedge_wins_;
  obs::Counter* breaker_opens_;
  obs::Counter* corrupt_retries_;
  obs::Counter* redials_;
};

}  // namespace xfraud::serve

#endif  // XFRAUD_SERVE_ROUTER_H_
