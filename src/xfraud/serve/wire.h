#ifndef XFRAUD_SERVE_WIRE_H_
#define XFRAUD_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "xfraud/common/frame.h"
#include "xfraud/common/status.h"
#include "xfraud/serve/scoring_service.h"

namespace xfraud::serve {

/// Payload codecs for the multi-process serving tier's frame types
/// (DESIGN.md §16). The frame *header* — type, rank, seq, payload length,
/// payload CRC — is common/frame.h's job; this file owns only the payload
/// layouts. All integers are little-endian byte-by-byte (same convention as
/// the header); doubles travel as their IEEE-754 bit pattern in a u64, so a
/// score crosses the wire bit-exactly — the tier's determinism contract
/// ("socket scores == in-process scores") holds to the last mantissa bit.

/// kScoreRequest payload (20 bytes). Header: rank = target shard,
/// seq = request id.
///
///   [0..8)   epoch        u64  pinned KV epoch to score at
///   [8..16)  deadline_us  u64  remaining budget at send time, microseconds
///                             (kNoDeadline = unlimited; 0 = already spent,
///                             the server must reject without scoring)
///   [16..20) txn_node     i32
struct ScoreRequestWire {
  uint64_t epoch = 0;
  /// Remaining seconds of request budget at send time; < 0 = no deadline.
  double deadline_s = -1.0;
  int32_t txn_node = 0;
};

inline constexpr uint64_t kNoDeadlineUs = ~0ULL;

/// kScoreReply payload (42 bytes + message). Header: rank = replying
/// server's rank, seq echoes the request id.
///
///   [0..4)   status code       u32 (StatusCode)
///   [4..12)  score             f64 bits
///   [12..20) imputed_rows      i64
///   [20..28) latency_s         f64 bits
///   [28..36) deadline_slack_s  f64 bits
///   [36..37) degraded          u8
///   [37..38) from_prefilter    u8
///   [38..42) message length    u32
///   [42..)   message bytes     (status message; empty on OK)
struct ScoreReplyWire {
  /// The scoring verdict. `response` fields are meaningful only on OK.
  Status status;
  ScoreResponse response;
};

/// kHealth payload (16 bytes). Header: seq echoes the ping nonce, so the
/// supervisor can match pongs to pings over a reused connection.
///
///   [0..8)   generation       u64  the incarnation the server was born in
///   [8..16)  requests_served  u64  score requests handled so far
struct HealthWire {
  uint64_t generation = 0;
  int64_t requests_served = 0;
};

std::string EncodeScoreRequest(const ScoreRequestWire& req);
Result<ScoreRequestWire> DecodeScoreRequest(const void* payload, size_t n);

std::string EncodeScoreReply(const ScoreReplyWire& reply);
Result<ScoreReplyWire> DecodeScoreReply(const void* payload, size_t n);

std::string EncodeHealth(const HealthWire& health);
Result<HealthWire> DecodeHealth(const void* payload, size_t n);

/// Rebuilds `*out` from its wire (code, message) pair; returns Corruption
/// (leaving *out untouched) on a code outside the StatusCode enum.
Status StatusFromWire(uint32_t code, std::string message, Status* out);

}  // namespace xfraud::serve

#endif  // XFRAUD_SERVE_WIRE_H_
