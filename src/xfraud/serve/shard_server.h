#ifndef XFRAUD_SERVE_SHARD_SERVER_H_
#define XFRAUD_SERVE_SHARD_SERVER_H_

#include <cstdint>
#include <string>

#include "xfraud/common/clock.h"
#include "xfraud/common/status.h"
#include "xfraud/core/detector.h"
#include "xfraud/dist/rendezvous.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/serve/scoring_service.h"

namespace xfraud::serve {

/// One shard-replica's worth of the multi-process serving tier (DESIGN.md
/// §16): a process that owns a LogKvStore cell WAL, a seed-initialized
/// detector, and a ScoringService, and answers XFRM score/health/drain
/// frames on a listening endpoint. Mirrors dist::DistWorkerOptions: the
/// supervisor and a standalone `xfraud_cli serve-worker` must derive
/// identical options or replicas diverge on request zero.
struct ShardServerOptions {
  /// Position in the tier grid. The shard partitions request traffic
  /// (router sends txn_node % num_shards here); replicas within a shard are
  /// failover/hedge targets serving bit-identical scores.
  int shard = 0;
  int replica = 0;
  /// LogKvStore WAL backing this cell. On (re)start the server recovers its
  /// state purely by replaying this log and pinning the latest published
  /// epoch — a respawned process serves the exact bytes its predecessor did.
  std::string cell_path;
  /// Where to listen. ListenOn unlinks a stale unix path, so a respawn
  /// rebinds the address its dead predecessor held.
  dist::Endpoint endpoint;
  /// Detector shape; feature_dim is overridden by the cell's metadata so
  /// the model always matches the WAL it serves.
  core::DetectorConfig detector;
  uint64_t model_seed = 7;
  /// Scoring knobs. The request's wire deadline overrides `deadline_s`.
  ServiceOptions service;
  /// Chaos profile (kill_server bites here; KV-level faults do not — this
  /// tier injects at process and wire level, so scores stay bit-identical
  /// to a clean run).
  fault::FaultPlan fault_plan;
  /// True on a respawned process: the planned kill already fired once.
  bool suppress_kill = false;
  /// Supervisor incarnation, echoed in health pongs so the supervisor can
  /// tell a respawned server from a zombie of the old generation.
  uint64_t generation = 0;
  /// Per-frame I/O budget once a header starts arriving.
  double io_timeout_s = 30.0;
  /// Exit with FailedPrecondition when no frame arrives for this long — an
  /// orphan guard so a server whose supervisor died does not linger.
  double idle_timeout_s = 600.0;
  Clock* clock = nullptr;
};

struct ShardServerStats {
  int64_t requests_served = 0;
  /// Frames whose payload failed CRC verification (wire bit flips); each
  /// was answered with a Corruption reply, never scored.
  int64_t corrupt_frames_rejected = 0;
  /// Requests whose wire deadline was already spent on arrival; rejected
  /// with DeadlineExceeded, never scored stale.
  int64_t deadline_rejects = 0;
  /// True when the server exited through an orderly kDrain.
  bool drained = false;
};

/// Runs the server loop to drain or error. Blocking; call in a dedicated
/// process (serve::Supervisor forks these). All socket I/O goes through the
/// dist/ frame transport — this file never touches a raw socket API.
Result<ShardServerStats> RunShardServer(const ShardServerOptions& options);

}  // namespace xfraud::serve

#endif  // XFRAUD_SERVE_SHARD_SERVER_H_
