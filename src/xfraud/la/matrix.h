#ifndef XFRAUD_LA_MATRIX_H_
#define XFRAUD_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "xfraud/common/check.h"

namespace xfraud::la {

/// Dense row-major matrix of doubles. This is the numerical workhorse for the
/// explainer's centrality measures (Laplacian solves, matrix exponentials,
/// eigenvectors) and for PIC graph partitioning. It is deliberately simple:
/// communities in the explainer evaluation have ~40 nodes / ~80 edges
/// (paper §5.1), so dense O(n^3) algorithms are the right tool.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    XF_DCHECK_BOUNDS(r, rows_);
    XF_DCHECK_BOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    XF_DCHECK_BOUNDS(r, rows_);
    XF_DCHECK_BOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transpose() const;

  /// Matrix product; pre: cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; pre: v.size() == cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double s) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max absolute entry (infinity norm of the vectorized matrix).
  double MaxAbs() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Returns false when A is numerically singular.
bool SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x);

/// Inverts A via LU; returns false when singular.
bool Invert(const Matrix& a, Matrix* inverse);

/// Moore-Penrose pseudo-inverse of a symmetric matrix via eigendecomposition,
/// used for the graph Laplacian in current-flow centralities (the Laplacian
/// is singular: its nullspace is the all-ones vector per connected component).
Matrix PseudoInverseSymmetric(const Matrix& a, double tol = 1e-10);

/// Jacobi eigendecomposition of a symmetric matrix: A = V diag(w) V^T.
/// Eigenvalues are returned in ascending order with matching columns of V.
void SymmetricEigen(const Matrix& a, std::vector<double>* eigenvalues,
                    Matrix* eigenvectors);

/// Dominant eigenvector by power iteration (normalized to unit 2-norm, made
/// non-negative when possible). Used by eigenvector centrality.
std::vector<double> PowerIteration(const Matrix& a, int max_iters = 1000,
                                   double tol = 1e-10);

/// Matrix exponential by scaling-and-squaring with a Taylor core. Used by
/// subgraph centrality and communicability betweenness.
Matrix Expm(const Matrix& a);

}  // namespace xfraud::la

#endif  // XFRAUD_LA_MATRIX_H_
