#include "xfraud/la/matrix.h"

#include <algorithm>
#include <cmath>

#include "xfraud/common/logging.h"

namespace xfraud::la {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  XF_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  XF_CHECK_EQ(cols_, v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = &data_[i * cols_];
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  XF_CHECK_SHAPE(*this, other);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  XF_CHECK_SHAPE(*this, other);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x) {
  XF_CHECK_EQ(a.rows(), a.cols());
  XF_CHECK_EQ(a.rows(), b.size());
  size_t n = a.rows();
  Matrix lu = a;
  std::vector<double> rhs = b;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(rhs[col], rhs[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = lu(r, col) / lu(col, col);
      lu(r, col) = 0.0;
      if (factor == 0.0) continue;
      for (size_t c = col + 1; c < n; ++c) lu(r, c) -= factor * lu(col, c);
      rhs[r] -= factor * rhs[col];
    }
  }
  // Back substitution.
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = rhs[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= lu(ri, c) * (*x)[c];
    (*x)[ri] = acc / lu(ri, ri);
  }
  return true;
}

bool Invert(const Matrix& a, Matrix* inverse) {
  XF_CHECK_EQ(a.rows(), a.cols());
  size_t n = a.rows();
  *inverse = Matrix(n, n);
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> e(n, 0.0);
    e[col] = 1.0;
    std::vector<double> x;
    if (!SolveLinearSystem(a, e, &x)) return false;
    for (size_t r = 0; r < n; ++r) (*inverse)(r, col) = x[r];
  }
  return true;
}

void SymmetricEigen(const Matrix& a, std::vector<double>* eigenvalues,
                    Matrix* eigenvectors) {
  XF_CHECK_EQ(a.rows(), a.cols());
  size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);

  // Cyclic Jacobi rotations.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) continue;
        double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return d(i, i) < d(j, j); });
  eigenvalues->assign(n, 0.0);
  *eigenvectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    (*eigenvalues)[i] = d(order[i], order[i]);
    for (size_t r = 0; r < n; ++r) (*eigenvectors)(r, i) = v(r, order[i]);
  }
}

Matrix PseudoInverseSymmetric(const Matrix& a, double tol) {
  XF_CHECK_EQ(a.rows(), a.cols());
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  size_t n = a.rows();
  double max_abs = 0.0;
  for (double x : w) max_abs = std::max(max_abs, std::fabs(x));
  double cutoff = tol * std::max(1.0, max_abs);
  Matrix out(n, n);
  for (size_t k = 0; k < n; ++k) {
    if (std::fabs(w[k]) <= cutoff) continue;
    double inv = 1.0 / w[k];
    for (size_t i = 0; i < n; ++i) {
      double vik = v(i, k) * inv;
      if (vik == 0.0) continue;
      for (size_t j = 0; j < n; ++j) out(i, j) += vik * v(j, k);
    }
  }
  return out;
}

std::vector<double> PowerIteration(const Matrix& a, int max_iters,
                                   double tol) {
  size_t n = a.rows();
  XF_CHECK_EQ(n, a.cols());
  std::vector<double> v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  for (int it = 0; it < max_iters; ++it) {
    std::vector<double> w = a.MultiplyVector(v);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return v;
    for (double& x : w) x /= norm;
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(w[i] - v[i]);
    v = std::move(w);
    if (delta < tol) break;
  }
  // Fix sign so that the dominant component is non-negative.
  double s = 0.0;
  for (double x : v) s += x;
  if (s < 0) {
    for (double& x : v) x = -x;
  }
  return v;
}

Matrix Expm(const Matrix& a) {
  XF_CHECK_EQ(a.rows(), a.cols());
  size_t n = a.rows();
  // Scaling and squaring: exp(A) = exp(A/2^s)^(2^s).
  double norm = a.MaxAbs() * static_cast<double>(n);
  int s = 0;
  while (norm > 0.5 && s < 40) {
    norm /= 2.0;
    ++s;
  }
  Matrix scaled = a.Scale(std::pow(2.0, -s));
  // Taylor series on the scaled matrix (converges fast since norm <= 0.5).
  Matrix result = Matrix::Identity(n);
  Matrix term = Matrix::Identity(n);
  for (int k = 1; k <= 24; ++k) {
    term = term.Multiply(scaled).Scale(1.0 / k);
    result = result.Add(term);
    if (term.MaxAbs() < 1e-18) break;
  }
  for (int i = 0; i < s; ++i) result = result.Multiply(result);
  return result;
}

}  // namespace xfraud::la
