#ifndef XFRAUD_STREAM_STREAMING_TOPOLOGY_H_
#define XFRAUD_STREAM_STREAMING_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/common/status.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/fault/faulty_kv.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/replicated_kv.h"
#include "xfraud/kv/sharded_kv.h"
#include "xfraud/kv/snapshot.h"
#include "xfraud/stream/graph_ingestor.h"

namespace xfraud::stream {

/// EpochSource over a grid of LogKvStore cells that all receive the same
/// writes (the write path fans every Put out to each replica). Keeps the
/// cells' epoch counters in lockstep:
///
///  - published_epoch() is the minimum over cells — the newest epoch that
///    is committed *everywhere*, the only epoch safe to hand to readers.
///  - PublishEpoch advances every cell that is still behind min+1, so a
///    crash between cells leaves the grid at most one epoch skewed and a
///    retry (or recovery) is idempotent.
///  - DiscardPending first rolls lagging cells *forward*: a cell behind the
///    maximum holds the full next epoch in its durable pending tail (the
///    writer flushes everywhere before publishing anywhere), so completing
///    its publish restores alignment without inventing data. Only then is
///    the pending tail truncated on every cell.
///  - Pins, TTL, and compaction fan out to every cell.
class FanoutEpochSource : public kv::EpochSource {
 public:
  /// Cells are not owned and must outlive this object (at least one).
  explicit FanoutEpochSource(std::vector<kv::LogKvStore*> cells);

  Result<uint64_t> PublishEpoch() override;
  uint64_t published_epoch() const override;
  Status PinEpoch(uint64_t epoch) override;
  void UnpinEpoch(uint64_t epoch) override;
  Status DiscardPending() override;
  Result<int64_t> Compact() override;

 private:
  std::vector<kv::LogKvStore*> cells_;
  // Serializes publish/discard/compact so the cells' counters cannot
  // interleave; pins only touch per-cell state and take no grid lock.
  std::mutex mu_;
};

/// A pinned, consistent read view of the streaming graph: an RAII epoch pin
/// plus epoch-forwarding wrappers over the serving FeatureStore. While the
/// view is alive its epoch cannot be TTL-expired or compacted away, so
/// every read — point lookups and whole sampling walks — observes the exact
/// committed state of that epoch even while the ingestor publishes past it.
class GraphView {
 public:
  GraphView() = default;
  ~GraphView() { Release(); }

  GraphView(GraphView&& other) noexcept
      : snapshot_(std::move(other.snapshot_)),
        store_(other.store_),
        on_release_(std::move(other.on_release_)) {
    other.store_ = nullptr;
    other.on_release_ = nullptr;
  }
  GraphView& operator=(GraphView&& other) noexcept {
    if (this != &other) {
      Release();
      snapshot_ = std::move(other.snapshot_);
      store_ = other.store_;
      on_release_ = std::move(other.on_release_);
      other.store_ = nullptr;
      other.on_release_ = nullptr;
    }
    return *this;
  }
  GraphView(const GraphView&) = delete;
  GraphView& operator=(const GraphView&) = delete;

  /// Pins the latest published epoch of `epochs` and binds it to `store`
  /// (both not owned, must outlive the view). `on_release` (may be null)
  /// runs once when the view is released — the topology uses it to drop
  /// the epoch's adjacency-cache entries when its last view goes away.
  static Result<GraphView> Open(const kv::FeatureStore* store,
                                kv::EpochSource* epochs,
                                std::function<void(uint64_t)> on_release);

  bool valid() const { return store_ != nullptr; }
  uint64_t epoch() const { return snapshot_.epoch(); }
  const kv::FeatureStore* features() const { return store_; }

  /// Epoch-forwarding reads (see kv::FeatureStore for semantics).
  Result<int64_t> NumNodes() const;
  Status ReadFeatures(int32_t node, std::vector<float>* out) const;
  Result<graph::MiniBatch> LoadBatch(const std::vector<int32_t>& seeds,
                                     int hops, int fanout,
                                     xfraud::Rng* rng) const;
  Result<graph::MiniBatch> LoadBatchDegraded(
      const std::vector<int32_t>& seeds, int hops, int fanout,
      xfraud::Rng* rng, kv::FeatureStore::DegradedLoadStats* stats) const;

  /// Drops the pin (idempotent; also run by the destructor).
  void Release();

 private:
  GraphView(kv::SnapshotHandle snapshot, const kv::FeatureStore* store,
            std::function<void(uint64_t)> on_release)
      : snapshot_(std::move(snapshot)),
        store_(store),
        on_release_(std::move(on_release)) {}

  kv::SnapshotHandle snapshot_;
  const kv::FeatureStore* store_ = nullptr;
  std::function<void(uint64_t)> on_release_;
};

struct StreamingOptions {
  /// Directory holding the cell logs ("<dir>/cell_<shard>_<replica>");
  /// created if missing. Reopening the same directory recovers the grid.
  std::string dir;
  int num_shards = 2;
  int num_replicas = 2;
  /// Failover/hedging/breaker behavior of the serving read path. Its clock
  /// defaults to `clock` below when unset.
  kv::ReplicationOptions replication;
  /// Chaos profile. Positioned faults (kill_replica / kill_shard /
  /// slow_replica) bite only the serving read path; the randomized per-op
  /// faults (kv_error / kv_corruption / torn_write / kv_latency) hit the
  /// ingest write path too — a write stack that cannot absorb them is
  /// exactly what the chaos harness exists to catch.
  fault::FaultPlan plan;
  /// Read-time TTL in epochs forwarded to every cell (0 = keep forever).
  uint64_t ttl_epochs = 0;
  Clock* clock = nullptr;
};

/// The mutable, versioned ingestion tier (DESIGN.md §15): the streaming
/// analogue of serve::ServingTopology, with crash-safe LogKvStore cells in
/// place of in-memory ones and an epoch surface over the grid.
///
///   serving():  ShardedKvStore
///                 └─ per shard: ReplicatedKvStore (failover/hedge/breaker)
///                      └─ per replica: [FaultyKvStore(r,s) →] LogKvStore
///   ingest():   ShardedKvStore
///                 └─ per shard: ReplicatedKvStore (Put fans to replicas)
///                      └─ per replica: [FaultyKvStore(-1,-1) →] LogKvStore
///   epochs():   FanoutEpochSource over all S×R cells
///
/// The two stacks share the same cells; they differ only in fault
/// positioning (a killed replica must not block ingest — real ingestors
/// write through a quorum path, and replica death is a *serving* fault in
/// this reproduction) and in breaker state. Open() recovers from any crash:
/// cell logs replay their torn tails, and the ingestor reattaches to the
/// last epoch that published on every cell.
class StreamingTopology {
 public:
  static Result<std::unique_ptr<StreamingTopology>> Open(
      StreamingOptions options);

  ~StreamingTopology();

  /// The hardened read path (hand to a FeatureStore), and the one this
  /// topology's own features()/OpenView() use.
  kv::KvStore* serving() const { return serving_.get(); }
  /// The write path the ingestor uses; every Put lands on all replicas of
  /// the key's shard.
  kv::KvStore* ingest_path() const { return ingest_.get(); }
  kv::EpochSource* epochs() const { return epochs_.get(); }
  GraphIngestor* ingestor() const { return ingestor_.get(); }
  /// Serving FeatureStore with the shared adjacency cache attached.
  kv::FeatureStore* features() const { return features_.get(); }
  kv::AdjacencyCache* adjacency_cache() const { return adj_cache_.get(); }
  /// Null when the plan injects nothing.
  fault::FaultInjector* injector() const { return injector_.get(); }

  kv::LogKvStore* cell(int shard, int replica) const {
    return cells_[static_cast<size_t>(shard) * options_.num_replicas +
                  replica]
        .get();
  }
  int num_shards() const { return options_.num_shards; }
  int num_replicas() const { return options_.num_replicas; }

  /// Pins the latest published epoch as a GraphView over the serving path.
  /// Views of one epoch share the adjacency cache; when the last view on an
  /// epoch is released its cache entries are evicted (the incremental
  /// sampler-invalidation protocol — nothing stale outlives its epoch).
  Result<GraphView> OpenView();

 private:
  explicit StreamingTopology(StreamingOptions options);
  Status Init();
  void ReleaseViewEpoch(uint64_t epoch);

  StreamingOptions options_;
  std::vector<std::unique_ptr<kv::LogKvStore>> cells_;  // [shard*R + replica]
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<fault::FaultyKvStore>> serving_faulty_;
  std::vector<std::unique_ptr<fault::FaultyKvStore>> ingest_faulty_;
  std::vector<std::unique_ptr<kv::ReplicatedKvStore>> serving_shards_;
  std::vector<std::unique_ptr<kv::ReplicatedKvStore>> ingest_shards_;
  std::unique_ptr<kv::ShardedKvStore> serving_;
  std::unique_ptr<kv::ShardedKvStore> ingest_;
  std::unique_ptr<FanoutEpochSource> epochs_;
  std::unique_ptr<kv::AdjacencyCache> adj_cache_;
  std::unique_ptr<kv::FeatureStore> features_;
  std::unique_ptr<GraphIngestor> ingestor_;

  std::mutex view_mu_;
  std::map<uint64_t, int> view_counts_;  // epoch -> live GraphViews
};

}  // namespace xfraud::stream

#endif  // XFRAUD_STREAM_STREAMING_TOPOLOGY_H_
