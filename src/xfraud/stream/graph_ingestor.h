#ifndef XFRAUD_STREAM_GRAPH_INGESTOR_H_
#define XFRAUD_STREAM_GRAPH_INGESTOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xfraud/common/clock.h"
#include "xfraud/common/status.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/graph/graph_builder.h"
#include "xfraud/kv/kvstore.h"
#include "xfraud/kv/snapshot.h"

namespace xfraud::stream {

/// Streaming counterpart of graph::GraphBuilder + kv::FeatureStore::Ingest
/// (DESIGN.md §15): transactions append continuously into the KV serving
/// schema instead of being frozen into one offline graph. Writes go through
/// `write_path` (the crash-safe WAL write stack) into the *pending* epoch;
/// PublishEpoch() commits everything buffered since the last publish as one
/// atomic, immutable epoch that pinned readers (kv::SnapshotHandle /
/// GraphView) can sample and score against while the writer keeps going.
///
/// On top of the FeatureStore schema ("m", "n<id>", "f<id>", "a<id>") the
/// ingestor persists its id assignment so it can reattach after a crash:
///   "t<txn_id>"          -> LE32 node id
///   "e<type_byte><key>"  -> LE32 node id   (entity interning, per type)
///
/// Node ids are assigned exactly as GraphBuilder would for the same record
/// sequence (transaction first, then new entities in buyer → email →
/// payment → address order), so a replayed log produces the identical graph
/// the offline builder yields.
///
/// Crash safety: Append buffers in memory; the flush inside PublishEpoch
/// writes every record into the pending epoch and only then commits. A
/// failed flush (e.g. an injected torn write) leaves the buffer intact —
/// retrying PublishEpoch rewrites the same keys in place (pending-epoch
/// upserts), so partial or half-persisted values never reach a committed
/// epoch. After a real crash, Attach() rolls the store back to its last
/// fully published epoch and rebuilds the id maps from the log.
///
/// Thread-compatible: one writer thread calls Append/PublishEpoch; the
/// background compactor and any number of snapshot readers run
/// concurrently (the stores underneath carry the synchronization).
class GraphIngestor {
 public:
  /// Neither is owned; both must outlive the ingestor. `write_path` is the
  /// write-side KV stack (fans a Put out to every replica); `epochs` is the
  /// matching epoch control surface (fans publish/pin/compact out to every
  /// cell). For a single LogKvStore, pass it as both.
  GraphIngestor(kv::KvStore* write_path, kv::EpochSource* epochs);
  ~GraphIngestor();

  GraphIngestor(const GraphIngestor&) = delete;
  GraphIngestor& operator=(const GraphIngestor&) = delete;

  /// Recovers ingestor state from the store: discards any uncommitted
  /// pending writes (a crashed half-epoch), then rebuilds the txn/entity id
  /// maps and feature dim from the last published state. Call once before
  /// the first Append when the store may hold prior data; a fresh store
  /// attaches to an empty graph.
  Status Attach();

  /// Buffers one transaction (AlreadyExists on duplicate id,
  /// InvalidArgument on feature-dim drift). Nothing is readable — even at
  /// the head — until the next PublishEpoch.
  Status Append(const graph::TransactionRecord& record);

  /// Flushes the buffer through the WAL write path and commits it as the
  /// next epoch; returns the published epoch number. On error the buffer
  /// is retained and the call is safe to retry (idempotent: pending-epoch
  /// writes replace in place). Publishing an empty buffer is legal and
  /// yields an empty epoch.
  Result<uint64_t> PublishEpoch();

  /// Node id of a transaction (buffered or published); -1 if unknown.
  int32_t TxnNode(const std::string& txn_id) const;

  /// Total nodes assigned so far (published + buffered).
  int64_t num_nodes() const { return next_id_; }
  /// Transactions buffered since the last successful publish.
  int64_t buffered() const { return static_cast<int64_t>(buffered_txns_); }

  /// Starts the background compaction loop: every `interval_s` it runs one
  /// epochs->Compact() cycle, preceded by the injector's planned
  /// stall_compaction pause (slept on `clock`) when `injector` is non-null.
  /// Readers stay pinned throughout — compaction preserves every pinned
  /// epoch. StopCompactor (or the destructor) joins the thread.
  void StartCompactor(Clock* clock, double interval_s,
                      fault::FaultInjector* injector);
  void StopCompactor();

  /// Compaction cycles completed (tests: prove the loop ran under chaos).
  int64_t compaction_cycles() const;

 private:
  /// A node created in the current unpublished buffer.
  struct PendingNode {
    int32_t id;
    graph::NodeType type;
    int8_t label;
  };

  int32_t InternEntity(graph::NodeType type, const std::string& key);
  /// Writes every buffered record into the pending epoch (no commit).
  Status FlushBuffer();
  void ClearBuffer();
  void CompactorLoop(Clock* clock, double interval_s,
                     fault::FaultInjector* injector);

  kv::KvStore* write_path_;
  kv::EpochSource* epochs_;

  // Id assignment (covers published and buffered nodes). Point lookups
  // only — iteration order never escapes.
  std::unordered_map<std::string, int32_t> txn_ids_;
  std::unordered_map<std::string, int32_t>
      entity_ids_[graph::kNumNodeTypes];
  int32_t next_id_ = 0;
  int64_t feature_dim_ = -1;

  // The unpublished buffer, all keyed or ordered deterministically so the
  // flush issues KV ops in a replayable sequence.
  std::vector<PendingNode> new_nodes_;                    // ascending id
  std::vector<std::pair<int32_t, std::vector<float>>> new_features_;
  std::map<int32_t, std::vector<std::pair<int32_t, uint8_t>>> pending_adj_;
  std::vector<std::pair<std::string, int32_t>> new_id_keys_;  // "t"/"e" rows
  size_t buffered_txns_ = 0;

  std::thread compactor_;
  mutable std::mutex compactor_mu_;
  std::condition_variable compactor_cv_;
  bool compactor_stop_ = false;
  int64_t compaction_cycles_ = 0;  // guarded by compactor_mu_
};

}  // namespace xfraud::stream

#endif  // XFRAUD_STREAM_GRAPH_INGESTOR_H_
