#include "xfraud/stream/graph_ingestor.h"

#include <chrono>
#include <cstring>

#include "xfraud/common/logging.h"
#include "xfraud/obs/metrics.h"
#include "xfraud/obs/registry.h"

namespace xfraud::stream {

namespace {

// FeatureStore schema keys (kept in lockstep with kv/feature_store.cc).
std::string NodeKey(int32_t id) { return "n" + std::to_string(id); }
std::string FeatKey(int32_t id) { return "f" + std::to_string(id); }
std::string AdjKey(int32_t id) { return "a" + std::to_string(id); }

// Ingestor id-map keys.
std::string TxnKey(const std::string& txn_id) { return "t" + txn_id; }
std::string EntityKey(graph::NodeType type, const std::string& key) {
  std::string out = "e";
  out.push_back(static_cast<char>(type));
  out += key;
  return out;
}

template <typename T>
void AppendPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view data, size_t* offset, T* out) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(out, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

std::string EncodeId(int32_t id) {
  std::string out;
  AppendPod(&out, id);
  return out;
}

struct StreamMetrics {
  obs::Counter* appended_txns;
  obs::Counter* published_epochs;
  obs::Counter* compactions;
  obs::Counter* flush_failures;

  static const StreamMetrics& Get() {
    static const StreamMetrics m = [] {
      auto& r = obs::Registry::Global();
      return StreamMetrics{r.counter("stream/appended_txns"),
                           r.counter("stream/published_epochs"),
                           r.counter("stream/compactions"),
                           r.counter("stream/flush_failures")};
    }();
    return m;
  }
};

}  // namespace

GraphIngestor::GraphIngestor(kv::KvStore* write_path,
                             kv::EpochSource* epochs)
    : write_path_(write_path), epochs_(epochs) {
  XF_CHECK(write_path_ != nullptr);
  XF_CHECK(epochs_ != nullptr);
}

GraphIngestor::~GraphIngestor() { StopCompactor(); }

Status GraphIngestor::Attach() {
  // Roll the store back to its last fully published epoch: a crashed
  // half-epoch is dropped, a crash mid-publish is completed (the fan-out
  // EpochSource aligns its cells before truncating).
  XF_RETURN_IF_ERROR(epochs_->DiscardPending());

  txn_ids_.clear();
  // Array-of-maps iterated in array order, and only to clear.
  // xfraud-analyze: allow(unordered-iter)
  for (auto& table : entity_ids_) table.clear();
  ClearBuffer();
  next_id_ = 0;
  feature_dim_ = -1;

  std::string meta;
  Status ms = write_path_->Get("m", &meta);
  if (ms.IsNotFound()) return Status::OK();  // fresh store, empty graph
  XF_RETURN_IF_ERROR(ms);
  size_t offset = 0;
  int64_t num_nodes = 0, dim = 0;
  if (!ReadPod(meta, &offset, &num_nodes) || !ReadPod(meta, &offset, &dim)) {
    return Status::Corruption("bad metadata record on attach");
  }
  next_id_ = static_cast<int32_t>(num_nodes);
  if (num_nodes > 0) feature_dim_ = dim;

  // Rebuild the id maps from the persisted interning rows. The scans see
  // the head, which after DiscardPending equals the last published state.
  for (const std::string& key : write_path_->KeysWithPrefix("t")) {
    std::string raw;
    XF_RETURN_IF_ERROR(write_path_->Get(key, &raw));
    size_t off = 0;
    int32_t id = 0;
    if (!ReadPod(raw, &off, &id)) {
      return Status::Corruption("bad txn id row: " + key);
    }
    txn_ids_.emplace(key.substr(1), id);
  }
  for (const std::string& key : write_path_->KeysWithPrefix("e")) {
    if (key.size() < 2 ||
        static_cast<uint8_t>(key[1]) >= graph::kNumNodeTypes) {
      return Status::Corruption("bad entity id row: " + key);
    }
    std::string raw;
    XF_RETURN_IF_ERROR(write_path_->Get(key, &raw));
    size_t off = 0;
    int32_t id = 0;
    if (!ReadPod(raw, &off, &id)) {
      return Status::Corruption("bad entity id row: " + key);
    }
    entity_ids_[static_cast<uint8_t>(key[1])].emplace(key.substr(2), id);
  }
  return Status::OK();
}

int32_t GraphIngestor::InternEntity(graph::NodeType type,
                                    const std::string& key) {
  auto& table = entity_ids_[static_cast<int>(type)];
  auto it = table.find(key);
  if (it != table.end()) return it->second;
  int32_t id = next_id_++;
  table.emplace(key, id);
  new_nodes_.push_back({id, type, graph::kLabelUnknown});
  new_id_keys_.emplace_back(EntityKey(type, key), id);
  return id;
}

Status GraphIngestor::Append(const graph::TransactionRecord& record) {
  if (record.txn_id.empty()) {
    return Status::InvalidArgument("transaction id must be non-empty");
  }
  if (txn_ids_.count(record.txn_id) != 0) {
    return Status::AlreadyExists("duplicate transaction id: " +
                                 record.txn_id);
  }
  if (feature_dim_ < 0) {
    feature_dim_ = static_cast<int64_t>(record.features.size());
  } else if (feature_dim_ != static_cast<int64_t>(record.features.size())) {
    return Status::InvalidArgument("inconsistent feature dimension for txn " +
                                   record.txn_id);
  }

  // Same assignment order as graph::GraphBuilder: the transaction node
  // first, then any new entities in buyer → email → payment → address
  // order — a replayed log reproduces the offline builder's ids exactly.
  int32_t txn = next_id_++;
  txn_ids_.emplace(record.txn_id, txn);
  new_nodes_.push_back({txn, graph::NodeType::kTxn, record.label});
  new_features_.emplace_back(txn, record.features);
  new_id_keys_.emplace_back(TxnKey(record.txn_id), txn);

  auto link = [&](graph::NodeType type, const std::string& key) {
    if (key.empty()) return;
    int32_t entity = InternEntity(type, key);
    pending_adj_[txn].emplace_back(
        entity, static_cast<uint8_t>(graph::EntityToTxnEdge(type)));
    pending_adj_[entity].emplace_back(
        txn, static_cast<uint8_t>(graph::TxnToEntityEdge(type)));
  };
  link(graph::NodeType::kBuyer, record.buyer_id);
  link(graph::NodeType::kEmail, record.email);
  link(graph::NodeType::kPmt, record.payment_token);
  link(graph::NodeType::kAddr, record.shipping_address);

  ++buffered_txns_;
  if (obs::IsEnabled()) StreamMetrics::Get().appended_txns->Increment();
  return Status::OK();
}

Status GraphIngestor::FlushBuffer() {
  const uint64_t published = epochs_->published_epoch();

  // 1. Node metadata, ascending id (new_nodes_ is appended in id order).
  for (const PendingNode& node : new_nodes_) {
    std::string row;
    AppendPod(&row, static_cast<uint8_t>(node.type));
    AppendPod(&row, node.label);
    AppendPod(&row, static_cast<uint8_t>(
                        node.type == graph::NodeType::kTxn ? 1 : 0));
    XF_RETURN_IF_ERROR(write_path_->Put(NodeKey(node.id), row));
  }

  // 2. Transaction feature rows.
  for (const auto& [id, features] : new_features_) {
    std::string row(reinterpret_cast<const char*>(features.data()),
                    features.size() * sizeof(float));
    XF_RETURN_IF_ERROR(write_path_->Put(FeatKey(id), row));
  }

  // 3. Adjacency: each touched node's new list = its last *published* list
  // plus the buffered additions. Reading the published epoch (never the
  // head) makes a retried flush idempotent — a torn remnant from a failed
  // attempt sits in the pending epoch and is simply overwritten, never
  // folded back into the base.
  for (const auto& [node, additions] : pending_adj_) {
    std::string adj;
    if (published > 0) {
      Status as = write_path_->GetAt(AdjKey(node), published, &adj);
      if (!as.ok() && !as.IsNotFound()) return as;
      // NotFound: node is new this epoch (or its row TTL-expired).
    }
    for (const auto& [src, etype] : additions) {
      AppendPod(&adj, src);
      AppendPod(&adj, etype);
    }
    XF_RETURN_IF_ERROR(write_path_->Put(AdjKey(node), adj));
  }

  // 4. Id-map rows, then metadata last (a reader of epoch N that can see
  // "m" can see everything it describes).
  for (const auto& [key, id] : new_id_keys_) {
    XF_RETURN_IF_ERROR(write_path_->Put(key, EncodeId(id)));
  }
  std::string meta;
  AppendPod(&meta, static_cast<int64_t>(next_id_));
  AppendPod(&meta, feature_dim_ < 0 ? int64_t{0} : feature_dim_);
  return write_path_->Put("m", meta);
}

Result<uint64_t> GraphIngestor::PublishEpoch() {
  Status flushed = FlushBuffer();
  if (!flushed.ok()) {
    // Buffer retained: the caller retries and the pending-epoch writes
    // replace in place. Nothing half-written can be published.
    if (obs::IsEnabled()) StreamMetrics::Get().flush_failures->Increment();
    return flushed;
  }
  Result<uint64_t> epoch = epochs_->PublishEpoch();
  if (!epoch.ok()) return epoch.status();
  ClearBuffer();
  if (obs::IsEnabled()) StreamMetrics::Get().published_epochs->Increment();
  return epoch;
}

void GraphIngestor::ClearBuffer() {
  new_nodes_.clear();
  new_features_.clear();
  pending_adj_.clear();
  new_id_keys_.clear();
  buffered_txns_ = 0;
}

int32_t GraphIngestor::TxnNode(const std::string& txn_id) const {
  auto it = txn_ids_.find(txn_id);
  return it == txn_ids_.end() ? -1 : it->second;
}

void GraphIngestor::StartCompactor(Clock* clock, double interval_s,
                                   fault::FaultInjector* injector) {
  XF_CHECK(!compactor_.joinable()) << "compactor already running";
  XF_CHECK(clock != nullptr);
  compactor_stop_ = false;
  compactor_ = std::thread(
      [this, clock, interval_s, injector] {
        CompactorLoop(clock, interval_s, injector);
      });
}

void GraphIngestor::StopCompactor() {
  {
    std::lock_guard<std::mutex> lock(compactor_mu_);
    compactor_stop_ = true;
  }
  compactor_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

int64_t GraphIngestor::compaction_cycles() const {
  std::lock_guard<std::mutex> lock(compactor_mu_);
  return compaction_cycles_;
}

void GraphIngestor::CompactorLoop(Clock* clock, double interval_s,
                                  fault::FaultInjector* injector) {
  std::unique_lock<std::mutex> lock(compactor_mu_);
  for (;;) {
    // The inter-cycle pacing is a real-time cv wait (so StopCompactor can
    // interrupt it immediately); the *injected* stall below sleeps on the
    // injectable clock, which is what chaos tests measure.
    compactor_cv_.wait_for(lock, std::chrono::duration<double>(interval_s),
                           [this] { return compactor_stop_; });
    if (compactor_stop_) return;
    lock.unlock();
    if (injector != nullptr) {
      double stall = injector->NextCompactionStall();
      if (stall > 0.0) clock->SleepFor(stall);
    }
    // A failed cycle (e.g. transient I/O) is retried at the next interval;
    // compaction is pure garbage collection, never required for progress.
    Result<int64_t> reclaimed = epochs_->Compact();
    if (reclaimed.ok() && obs::IsEnabled()) {
      StreamMetrics::Get().compactions->Increment();
    }
    lock.lock();
    ++compaction_cycles_;
  }
}

}  // namespace xfraud::stream
