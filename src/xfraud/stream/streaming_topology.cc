#include "xfraud/stream/streaming_topology.h"

#include <algorithm>
#include <filesystem>

#include "xfraud/common/logging.h"

namespace xfraud::stream {

FanoutEpochSource::FanoutEpochSource(std::vector<kv::LogKvStore*> cells)
    : cells_(std::move(cells)) {
  XF_CHECK(!cells_.empty());
  for (kv::LogKvStore* cell : cells_) XF_CHECK(cell != nullptr);
}

uint64_t FanoutEpochSource::published_epoch() const {
  uint64_t min_epoch = cells_[0]->published_epoch();
  for (size_t i = 1; i < cells_.size(); ++i) {
    min_epoch = std::min(min_epoch, cells_[i]->published_epoch());
  }
  return min_epoch;
}

Result<uint64_t> FanoutEpochSource::PublishEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t target = published_epoch() + 1;
  for (kv::LogKvStore* cell : cells_) {
    if (cell->published_epoch() >= target) continue;  // already there
    Result<uint64_t> r = cell->PublishEpoch();
    if (!r.ok()) return r.status();
    XF_CHECK_EQ(r.value(), target)
        << "cell epoch counter diverged from the grid";
  }
  return target;
}

Status FanoutEpochSource::PinEpoch(uint64_t epoch) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    Status s = cells_[i]->PinEpoch(epoch);
    if (!s.ok()) {
      for (size_t j = 0; j < i; ++j) cells_[j]->UnpinEpoch(epoch);
      return s;
    }
  }
  return Status::OK();
}

void FanoutEpochSource::UnpinEpoch(uint64_t epoch) {
  for (kv::LogKvStore* cell : cells_) cell->UnpinEpoch(epoch);
}

Status FanoutEpochSource::DiscardPending() {
  std::lock_guard<std::mutex> lock(mu_);
  // Roll forward first: a cell behind the maximum crashed between the
  // grid-wide flush (its pending tail holds the complete epoch) and its own
  // publish — completing the publish realigns the grid without data loss.
  uint64_t target = cells_[0]->published_epoch();
  for (kv::LogKvStore* cell : cells_) {
    target = std::max(target, cell->published_epoch());
  }
  for (kv::LogKvStore* cell : cells_) {
    while (cell->published_epoch() < target) {
      Result<uint64_t> r = cell->PublishEpoch();
      XF_RETURN_IF_ERROR(r.status());
    }
  }
  for (kv::LogKvStore* cell : cells_) {
    XF_RETURN_IF_ERROR(cell->DiscardPending());
  }
  return Status::OK();
}

Result<int64_t> FanoutEpochSource::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t reclaimed = 0;
  for (kv::LogKvStore* cell : cells_) {
    Result<int64_t> r = cell->Compact();
    if (!r.ok()) return r.status();
    reclaimed += r.value();
  }
  return reclaimed;
}

Result<GraphView> GraphView::Open(
    const kv::FeatureStore* store, kv::EpochSource* epochs,
    std::function<void(uint64_t)> on_release) {
  XF_CHECK(store != nullptr);
  Result<kv::SnapshotHandle> snap = kv::SnapshotHandle::PinLatest(epochs);
  if (!snap.ok()) return snap.status();
  return GraphView(std::move(snap).value(), store, std::move(on_release));
}

void GraphView::Release() {
  if (store_ == nullptr) return;
  const uint64_t epoch = snapshot_.epoch();
  store_ = nullptr;
  if (on_release_ != nullptr) {
    on_release_(epoch);
    on_release_ = nullptr;
  }
  snapshot_.Release();
}

Result<int64_t> GraphView::NumNodes() const {
  return store_->NumNodes(epoch());
}

Status GraphView::ReadFeatures(int32_t node, std::vector<float>* out) const {
  return store_->ReadFeatures(node, out, epoch());
}

Result<graph::MiniBatch> GraphView::LoadBatch(
    const std::vector<int32_t>& seeds, int hops, int fanout,
    xfraud::Rng* rng) const {
  return store_->LoadBatch(seeds, hops, fanout, rng, epoch());
}

Result<graph::MiniBatch> GraphView::LoadBatchDegraded(
    const std::vector<int32_t>& seeds, int hops, int fanout,
    xfraud::Rng* rng, kv::FeatureStore::DegradedLoadStats* stats) const {
  return store_->LoadBatchDegraded(seeds, hops, fanout, rng, epoch(), stats);
}

StreamingTopology::StreamingTopology(StreamingOptions options)
    : options_(std::move(options)) {}

StreamingTopology::~StreamingTopology() {
  // Stop the compactor before any store it reaches through epochs_ dies.
  if (ingestor_ != nullptr) ingestor_->StopCompactor();
}

Result<std::unique_ptr<StreamingTopology>> StreamingTopology::Open(
    StreamingOptions options) {
  XF_CHECK_GT(options.num_shards, 0);
  XF_CHECK_GT(options.num_replicas, 0);
  XF_CHECK(!options.dir.empty());
  // Private constructor: make_unique cannot reach it, so the factory owns
  // the one naked new. xfraud-lint: allow(no-naked-new)
  std::unique_ptr<StreamingTopology> topology(new StreamingTopology(options));
  XF_RETURN_IF_ERROR(topology->Init());
  return topology;
}

Status StreamingTopology::Init() {
  const int S = options_.num_shards;
  const int R = options_.num_replicas;
  Clock* clock = options_.clock != nullptr ? options_.clock : Clock::Real();
  if (options_.replication.clock == nullptr) {
    options_.replication.clock = clock;
  }

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("cannot create streaming dir '" + options_.dir +
                           "': " + ec.message());
  }

  cells_.reserve(static_cast<size_t>(S) * R);
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      std::string path = options_.dir + "/cell_" + std::to_string(s) + "_" +
                         std::to_string(r);
      Result<std::unique_ptr<kv::LogKvStore>> cell =
          kv::LogKvStore::Open(path);
      if (!cell.ok()) return cell.status();
      cell.value()->SetTtlEpochs(options_.ttl_epochs);
      cells_.push_back(std::move(cell).value());
    }
  }
  if (options_.plan.any()) {
    injector_ = std::make_unique<fault::FaultInjector>(options_.plan);
    serving_faulty_.reserve(cells_.size());
    ingest_faulty_.reserve(cells_.size());
  }

  // Ingest replication: same failover machinery on its (rare) reads, but
  // its own breakers — write-path chaos must not poison serving breakers.
  kv::ReplicationOptions ingest_replication;
  ingest_replication.clock = clock;

  serving_shards_.reserve(S);
  ingest_shards_.reserve(S);
  for (int s = 0; s < S; ++s) {
    std::vector<kv::KvStore*> serving_replicas;
    std::vector<kv::KvStore*> ingest_replicas;
    serving_replicas.reserve(R);
    ingest_replicas.reserve(R);
    for (int r = 0; r < R; ++r) {
      kv::KvStore* cell = cells_[static_cast<size_t>(s) * R + r].get();
      kv::KvStore* serving_cell = cell;
      kv::KvStore* ingest_cell = cell;
      if (injector_ != nullptr) {
        serving_faulty_.push_back(std::make_unique<fault::FaultyKvStore>(
            cell, injector_.get(), r, s, clock));
        serving_cell = serving_faulty_.back().get();
        // Unpositioned: per-op faults (errors, torn writes, latency) hit
        // ingest, but a killed replica/shard only bites serving reads.
        ingest_faulty_.push_back(std::make_unique<fault::FaultyKvStore>(
            cell, injector_.get(), /*replica_id=*/-1, /*shard_id=*/-1,
            clock));
        ingest_cell = ingest_faulty_.back().get();
      }
      serving_replicas.push_back(serving_cell);
      ingest_replicas.push_back(ingest_cell);
    }
    serving_shards_.push_back(std::make_unique<kv::ReplicatedKvStore>(
        std::move(serving_replicas), options_.replication));
    ingest_shards_.push_back(std::make_unique<kv::ReplicatedKvStore>(
        std::move(ingest_replicas), ingest_replication));
  }

  std::vector<kv::KvStore*> serving_ptrs, ingest_ptrs;
  serving_ptrs.reserve(S);
  ingest_ptrs.reserve(S);
  for (int s = 0; s < S; ++s) {
    serving_ptrs.push_back(serving_shards_[s].get());
    ingest_ptrs.push_back(ingest_shards_[s].get());
  }
  serving_ = std::make_unique<kv::ShardedKvStore>(std::move(serving_ptrs));
  ingest_ = std::make_unique<kv::ShardedKvStore>(std::move(ingest_ptrs));

  std::vector<kv::LogKvStore*> cell_ptrs;
  cell_ptrs.reserve(cells_.size());
  for (const auto& cell : cells_) cell_ptrs.push_back(cell.get());
  epochs_ = std::make_unique<FanoutEpochSource>(std::move(cell_ptrs));

  adj_cache_ = std::make_unique<kv::AdjacencyCache>();
  features_ = std::make_unique<kv::FeatureStore>(serving_.get());
  features_->set_adjacency_cache(adj_cache_.get());

  ingestor_ =
      std::make_unique<GraphIngestor>(ingest_.get(), epochs_.get());
  return ingestor_->Attach();
}

Result<GraphView> StreamingTopology::OpenView() {
  Result<GraphView> view = GraphView::Open(
      features_.get(), epochs_.get(),
      [this](uint64_t epoch) { ReleaseViewEpoch(epoch); });
  if (view.ok()) {
    std::lock_guard<std::mutex> lock(view_mu_);
    ++view_counts_[view.value().epoch()];
  }
  return view;
}

void StreamingTopology::ReleaseViewEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(view_mu_);
  auto it = view_counts_.find(epoch);
  if (it == view_counts_.end()) return;
  if (--it->second <= 0) {
    view_counts_.erase(it);
    // Last view on this epoch: its frontier cache can never be read again
    // at this epoch, so drop it now (nothing stale survives the epoch).
    adj_cache_->EvictEpoch(epoch);
  }
}

}  // namespace xfraud::stream
