#include "xfraud/obs/trace.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace xfraud::obs {

namespace {

std::atomic<bool> g_trace_logging{false};
thread_local int t_span_depth = 0;

}  // namespace

void SetTraceLogging(bool enabled) {
  g_trace_logging.store(enabled, std::memory_order_relaxed);
}

bool TraceLoggingEnabled() {
  return g_trace_logging.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      hist_(IsEnabled()
                ? Registry::Global().histogram(std::string("span/") + name)
                : nullptr),
      depth_(t_span_depth++) {}

ScopedSpan::~ScopedSpan() {
  --t_span_depth;
  if (hist_ == nullptr) return;
  double seconds = timer_.ElapsedSeconds();
  hist_->Record(seconds);
  if (TraceLoggingEnabled()) {
    // One fprintf keeps concurrent spans line-atomic on POSIX stderr.
    std::fprintf(stderr, "[trace] %*s%s took %.3fms\n", depth_ * 2, "", name_,
                 seconds * 1e3);
  }
}

}  // namespace xfraud::obs
