#ifndef XFRAUD_OBS_METRICS_H_
#define XFRAUD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>

namespace xfraud::obs {

/// Global observability kill switch. Metric writes are no-ops while
/// disabled (one relaxed atomic load per call site), so instrumentation can
/// stay compiled into the hot paths at negligible cost. Defaults to
/// enabled; benches honour XFRAUD_OBS=0 (see bench_common.h) and the CLI
/// always records when --metrics-out / --trace is given.
void SetEnabled(bool enabled);

inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool IsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

/// Monotonically increasing event count (batches produced, cache hits,
/// bytes moved). Safe for concurrent writers.
class Counter {
 public:
  void Add(int64_t delta) {
    if (IsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, worker count). Safe for
/// concurrent writers; readers see some recent write.
class Gauge {
 public:
  void Set(double value) {
    if (IsEnabled()) value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (IsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time summary of a Histogram. count/sum/min/max/mean are exact;
/// the percentiles are estimated by linear interpolation inside the
/// power-of-two bucket that holds the rank (error bounded by the bucket
/// width, i.e. at most 2x), then clamped to [min, max].
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed distribution of positive values (latency seconds, frontier
/// sizes, record bytes). Buckets are powers of two spanning 2^-48 .. 2^48,
/// which covers sub-nanosecond latencies through terabyte counts; values at
/// or below zero land in the lowest bucket. Every member is a relaxed
/// atomic, so concurrent Record calls never lose counts (a snapshot taken
/// mid-write may be transiently inconsistent between count and sum, which
/// is fine for monitoring output).
class Histogram {
 public:
  static constexpr int kNumBuckets = 96;
  static constexpr int kBias = 48;  // bucket b covers [2^(b-49), 2^(b-48))

  void Record(double value);

  HistogramSnapshot Snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  void Reset();

  /// Bucket index of `value` (exposed for tests).
  static int BucketOf(double value);
  /// Inclusive lower bound of bucket `b`.
  static double BucketLowerBound(int b);

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Running extrema via CAS loops (atomic<double> has no fetch_min).
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace xfraud::obs

#endif  // XFRAUD_OBS_METRICS_H_
