#ifndef XFRAUD_OBS_TRACE_H_
#define XFRAUD_OBS_TRACE_H_

#include "xfraud/common/timer.h"
#include "xfraud/obs/registry.h"

namespace xfraud::obs {

/// When true, every ScopedSpan prints an indented "[trace] name took Xms"
/// line to stderr on exit (nesting shown by indentation, per thread).
/// Span durations are always recorded into the "span/<name>" histogram of
/// the global registry regardless of this switch (subject to IsEnabled()).
void SetTraceLogging(bool enabled);
bool TraceLoggingEnabled();

/// RAII trace scope: measures the wall time between construction and
/// destruction, records it into Registry::Global().histogram("span/<name>"),
/// and (with trace logging on) prints the span on exit. `name` must be a
/// string literal or otherwise outlive the span.
///
///   {
///     obs::ScopedSpan span("trainer/epoch");
///     ...  // work
///   }  // records + optionally prints here
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Seconds since construction (for callers that also want the value).
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  const char* name_;
  Histogram* hist_;  // nullptr when obs was disabled at entry
  int depth_ = 0;
  WallTimer timer_;
};

}  // namespace xfraud::obs

#endif  // XFRAUD_OBS_TRACE_H_
