#ifndef XFRAUD_OBS_REGISTRY_H_
#define XFRAUD_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "xfraud/common/status.h"
#include "xfraud/obs/metrics.h"

namespace xfraud::obs {

/// Named-metric directory: one flat namespace of Counters, Gauges, and
/// Histograms ("subsystem/metric" by convention, e.g. "loader/queue_depth").
/// Lookup creates the metric on first use and returns a pointer that stays
/// valid for the registry's lifetime — call sites cache it (typically in a
/// function-local static against Global()) so the steady-state cost of a
/// metric write is one relaxed atomic op, no map lookup.
///
/// Reset() zeroes values but never destroys metric objects, so cached
/// pointers survive between bench iterations and tests.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation point writes
  /// to. Never destroyed (leaked on purpose) so metric writes from static
  /// destructors can't touch a dead object.
  static Registry& Global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Zeroes every metric, keeping all objects (and cached pointers) alive.
  void Reset();

  /// Aligned table of every metric (common::TablePrinter layout): counters
  /// and gauges as single-value rows, histograms with count/mean/p50/p95/
  /// p99/max columns.
  void PrintTable(std::ostream& os) const;

  /// JSON snapshot (schema documented in DESIGN.md §8):
  ///   {"counters": {name: int, ...},
  ///    "gauges":   {name: double, ...},
  ///    "histograms": {name: {"count":..,"sum":..,"min":..,"max":..,
  ///                          "mean":..,"p50":..,"p95":..,"p99":..}, ...}}
  std::string ToJson() const;

  /// Writes ToJson() to `path` (overwriting).
  Status WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  // std::map keeps snapshot output sorted and node-based, so pointers into
  // the mapped unique_ptrs are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xfraud::obs

#endif  // XFRAUD_OBS_REGISTRY_H_
