#include "xfraud/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace xfraud::obs {

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

int Histogram::BucketOf(double value) {
  if (!(value > 0.0)) return 0;  // zero, negatives, NaN -> lowest bucket
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  return std::clamp(exp + kBias, 0, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int b) {
  return std::ldexp(1.0, b - kBias - 1);
}

void Histogram::Record(double value) {
  if (!IsEnabled()) return;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    // First sample seeds both extrema; racing first samples are folded in
    // by the CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  int64_t counts[kNumBuckets];
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  snap.count = total;
  if (total == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.mean = snap.sum / static_cast<double>(total);

  auto percentile = [&](double q) {
    // Rank of the q-quantile in the merged bucket counts, then linear
    // interpolation between the bucket's bounds.
    double rank = q * static_cast<double>(total - 1);
    int64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (counts[b] == 0) continue;
      if (rank < static_cast<double>(seen + counts[b])) {
        double frac = (rank - static_cast<double>(seen)) /
                      static_cast<double>(counts[b]);
        double lo = BucketLowerBound(b);
        double hi = BucketLowerBound(b + 1);
        return std::clamp(lo + frac * (hi - lo), snap.min, snap.max);
      }
      seen += counts[b];
    }
    return snap.max;
  };
  snap.p50 = percentile(0.50);
  snap.p95 = percentile(0.95);
  snap.p99 = percentile(0.99);
  return snap;
}

}  // namespace xfraud::obs
