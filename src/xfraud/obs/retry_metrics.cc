// Definitions of common/retry.h's telemetry hooks. They live here, not in
// common/retry.cc, so the include-graph edge runs obs -> common only:
// common/ declares the hooks, obs/ implements them against the global
// Registry, and the linker ties the two together. This is the dependency
// inversion that keeps the bottom layer of the module DAG free of upward
// includes (xfraud_analyze rule `layer-violation`).

#include "xfraud/common/retry.h"
#include "xfraud/obs/metrics.h"
#include "xfraud/obs/registry.h"

namespace xfraud::internal {

namespace {

struct RetryMetrics {
  obs::Counter* attempts;
  obs::Counter* retries;
  obs::Counter* giveups;

  static const RetryMetrics& Get() {
    static RetryMetrics metrics = [] {
      auto& r = obs::Registry::Global();
      return RetryMetrics{r.counter("retry/attempts"),
                          r.counter("retry/retries"),
                          r.counter("retry/giveups")};
    }();
    return metrics;
  }
};

}  // namespace

void CountAttempt() { RetryMetrics::Get().attempts->Increment(); }

void CountRetry() { RetryMetrics::Get().retries->Increment(); }

void CountGiveup() { RetryMetrics::Get().giveups->Increment(); }

}  // namespace xfraud::internal
