#include "xfraud/obs/registry.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "xfraud/common/atomic_file.h"
#include "xfraud/common/table_printer.h"

namespace xfraud::obs {

namespace {

template <typename Map>
auto* FindOrCreate(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    using Metric = typename Map::mapped_type::element_type;
    it = map.emplace(std::string(name), std::make_unique<Metric>()).first;
  }
  return it->second.get();
}

// Compact numeric formatting for JSON: integers stay integral, everything
// else gets enough digits to round-trip doubles of metric magnitude.
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Metric names are ASCII "subsystem/metric" strings, but escape the JSON
// specials anyway so the snapshot is always parseable.
std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

Registry& Registry::Global() {
  // Intentionally leaked so metrics survive static destruction order.
  // xfraud-lint: allow(no-naked-new)
  static Registry* global = new Registry();
  return *global;
}

Counter* Registry::counter(std::string_view name) {
  return FindOrCreate(mu_, counters_, name);
}

Gauge* Registry::gauge(std::string_view name) {
  return FindOrCreate(mu_, gauges_, name);
}

Histogram* Registry::histogram(std::string_view name) {
  return FindOrCreate(mu_, histograms_, name);
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void Registry::PrintTable(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  TablePrinter table({"metric", "kind", "count", "value/mean", "p50", "p95",
                      "p99", "max"});
  for (const auto& [name, c] : counters_) {
    table.AddRow({name, "counter", "-", std::to_string(c->value()), "-", "-",
                  "-", "-"});
  }
  for (const auto& [name, g] : gauges_) {
    table.AddRow({name, "gauge", "-", TablePrinter::Num(g->value(), 4), "-",
                  "-", "-", "-"});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    table.AddRow({name, "histogram", std::to_string(s.count),
                  TablePrinter::Num(s.mean, 6), TablePrinter::Num(s.p50, 6),
                  TablePrinter::Num(s.p95, 6), TablePrinter::Num(s.p99, 6),
                  TablePrinter::Num(s.max, 6)});
  }
  table.Print(os);
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    " << JsonStr(name) << ": "
       << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    " << JsonStr(name) << ": "
       << JsonNum(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    os << (first ? "" : ",") << "\n    " << JsonStr(name) << ": {"
       << "\"count\": " << s.count << ", \"sum\": " << JsonNum(s.sum)
       << ", \"min\": " << JsonNum(s.min) << ", \"max\": " << JsonNum(s.max)
       << ", \"mean\": " << JsonNum(s.mean) << ", \"p50\": " << JsonNum(s.p50)
       << ", \"p95\": " << JsonNum(s.p95) << ", \"p99\": " << JsonNum(s.p99)
       << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

Status Registry::WriteJsonFile(const std::string& path) const {
  return AtomicWriteFile(path, ToJson());
}

}  // namespace xfraud::obs
