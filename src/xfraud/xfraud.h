#ifndef XFRAUD_XFRAUD_H_
#define XFRAUD_XFRAUD_H_

/// Umbrella header: the public API of the xFraud reproduction.
///
/// Layering (bottom-up):
///   common  -> Status, Rng, ThreadPool, timing, table printing
///   obs     -> counters/gauges/histograms, scoped traces, registry
///              snapshots (threaded through every layer below)
///   la      -> dense linear algebra (solves, eigen, expm) for the explainer
///   nn      -> tensors, tape autograd, modules, AdamW (the DL substrate)
///   graph   -> heterogeneous transaction graph, builder, subgraphs
///   data    -> synthetic eBay-like workload, splits, annotator simulation
///   kv      -> log-structured / sharded KV feature store (data loading)
///   sample  -> GraphSAGE-style and HGSampling neighbourhood samplers,
///              pipelined prefetching BatchLoader
///   core    -> the xFraud detector (self-attentive heterogeneous GNN)
///   baselines -> GAT and GEM comparison models
///   train   -> trainer, metrics (AUC/AP/curves/threshold tables)
///   explain -> GNNExplainer, 13 centrality measures, hybrid explainer
///   dist    -> PIC partitioning + DistributedDataParallel over a
///              Communicator transport (in-process shared-memory group or
///              socket-backed multi-process ring with rendezvous, real
///              SIGKILL fault injection, and checkpoint-resume recovery)
///   fault   -> deterministic fault injection (chaos plans, faulty KV and
///              sampler decorators) for robustness testing
///   serve   -> online scoring service over a sharded+replicated KV
///              topology: failover, hedged reads, circuit breakers,
///              deadlines, load shedding (sits above core/kv/baselines)
///   stream  -> crash-safe streaming ingestion (DESIGN.md §15): the
///              GraphIngestor appends transactions through the WAL write
///              path and publishes immutable MVCC epochs; GraphView pins
///              an epoch for consistent reads while writers advance and
///              the background compactor garbage-collects behind the pins

#include "xfraud/baselines/gat.h"
#include "xfraud/baselines/gem.h"
#include "xfraud/baselines/rule_scorer.h"
#include "xfraud/common/atomic_file.h"
#include "xfraud/common/clock.h"
#include "xfraud/common/logging.h"
#include "xfraud/common/mpmc_queue.h"
#include "xfraud/common/retry.h"
#include "xfraud/common/rng.h"
#include "xfraud/common/status.h"
#include "xfraud/common/table_printer.h"
#include "xfraud/common/thread_pool.h"
#include "xfraud/common/timer.h"
#include "xfraud/core/detector.h"
#include "xfraud/core/gnn_model.h"
#include "xfraud/core/hetero_conv.h"
#include "xfraud/data/annotation.h"
#include "xfraud/data/generator.h"
#include "xfraud/data/log_io.h"
#include "xfraud/data/prefilter.h"
#include "xfraud/dist/communicator.h"
#include "xfraud/dist/distributed.h"
#include "xfraud/dist/launcher.h"
#include "xfraud/dist/partition.h"
#include "xfraud/dist/rendezvous.h"
#include "xfraud/dist/socket_transport.h"
#include "xfraud/dist/worker.h"
#include "xfraud/explain/centrality.h"
#include "xfraud/explain/evaluation.h"
#include "xfraud/explain/feature_importance.h"
#include "xfraud/explain/gnn_explainer.h"
#include "xfraud/explain/hit_rate.h"
#include "xfraud/explain/hybrid.h"
#include "xfraud/explain/visualize.h"
#include "xfraud/fault/fault_injector.h"
#include "xfraud/fault/fault_plan.h"
#include "xfraud/fault/faulty_kv.h"
#include "xfraud/fault/faulty_sampler.h"
#include "xfraud/graph/graph_builder.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/serialize.h"
#include "xfraud/graph/subgraph.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/kv/log_kv.h"
#include "xfraud/kv/mem_kv.h"
#include "xfraud/kv/replicated_kv.h"
#include "xfraud/kv/sharded_kv.h"
#include "xfraud/kv/snapshot.h"
#include "xfraud/nn/modules.h"
#include "xfraud/nn/ops.h"
#include "xfraud/nn/optim.h"
#include "xfraud/nn/serialize.h"
#include "xfraud/obs/metrics.h"
#include "xfraud/obs/registry.h"
#include "xfraud/obs/trace.h"
#include "xfraud/sample/batch_loader.h"
#include "xfraud/sample/sampler.h"
#include "xfraud/serve/router.h"
#include "xfraud/serve/scoring_service.h"
#include "xfraud/serve/shard_server.h"
#include "xfraud/serve/supervisor.h"
#include "xfraud/serve/topology.h"
#include "xfraud/serve/wire.h"
#include "xfraud/stream/graph_ingestor.h"
#include "xfraud/stream/streaming_topology.h"
#include "xfraud/train/checkpoint.h"
#include "xfraud/train/incremental.h"
#include "xfraud/train/metrics.h"
#include "xfraud/train/trainer.h"

#endif  // XFRAUD_XFRAUD_H_
