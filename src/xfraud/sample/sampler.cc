#include "xfraud/sample/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "xfraud/common/logging.h"
#include "xfraud/common/timer.h"
#include "xfraud/obs/registry.h"

namespace xfraud::sample {

using graph::HeteroGraph;
using graph::Subgraph;

namespace {

// Cached global-registry handles: sampler metrics are written once per
// Sample call (locals accumulated first), so the cost stays a handful of
// relaxed atomic ops per mini-batch.
struct SamplerMetrics {
  obs::Histogram* frontier_nodes;
  obs::Histogram* subgraph_nodes;
  obs::Histogram* subgraph_edges;
  obs::Histogram* sample_s;
  obs::Counter* fanout_truncations;
  obs::Counter* batches;

  static const SamplerMetrics& Get() {
    static const SamplerMetrics m = [] {
      auto& r = obs::Registry::Global();
      return SamplerMetrics{r.histogram("sampler/frontier_nodes"),
                            r.histogram("sampler/subgraph_nodes"),
                            r.histogram("sampler/subgraph_edges"),
                            r.histogram("sampler/sample_s"),
                            r.counter("sampler/fanout_truncations"),
                            r.counter("sampler/batches")};
    }();
    return m;
  }
};

void RecordSubgraph(const Subgraph& sub) {
  const SamplerMetrics& m = SamplerMetrics::Get();
  m.subgraph_nodes->Record(static_cast<double>(sub.nodes.size()));
  m.subgraph_edges->Record(static_cast<double>(sub.src.size()));
}

}  // namespace

MiniBatch Sampler::SampleBatch(const HeteroGraph& g,
                               const std::vector<int32_t>& seeds,
                               xfraud::Rng* rng) const {
  WallTimer timer;
  MiniBatch batch = MakeBatch(g, Sample(g, seeds, rng), seeds);
  const SamplerMetrics& m = SamplerMetrics::Get();
  m.sample_s->Record(timer.ElapsedSeconds());
  m.batches->Increment();
  return batch;
}

namespace {

int32_t AddNode(Subgraph* sub, int32_t global) {
  auto [it, inserted] =
      sub->local_of.emplace(global, static_cast<int32_t>(sub->nodes.size()));
  if (inserted) sub->nodes.push_back(global);
  return it->second;
}

void InduceEdges(const HeteroGraph& g, Subgraph* sub) {
  for (size_t local = 0; local < sub->nodes.size(); ++local) {
    int32_t v = sub->nodes[local];
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      int32_t u = g.neighbors()[e];
      auto it = sub->local_of.find(u);
      if (it == sub->local_of.end()) continue;
      sub->src.push_back(it->second);
      sub->dst.push_back(static_cast<int32_t>(local));
      sub->etypes.push_back(g.edge_types()[e]);
    }
  }
  XF_DCHECK_EQ(sub->src.size(), sub->dst.size());
  XF_DCHECK_EQ(sub->src.size(), sub->etypes.size());
}

}  // namespace

Subgraph SageSampler::Sample(const HeteroGraph& g,
                             const std::vector<int32_t>& seeds,
                             xfraud::Rng* rng) const {
  XF_CHECK(rng != nullptr);
  XF_CHECK_GE(hops_, 0);
  XF_CHECK_GT(fanout_, 0);
  Subgraph sub;
  std::vector<int32_t> frontier;
  for (int32_t seed : seeds) {
    if (sub.local_of.count(seed) == 0) {
      AddNode(&sub, seed);
      frontier.push_back(seed);
    }
  }
  if (!seeds.empty()) sub.seed_local = sub.local_of.at(seeds.front());

  int64_t truncations = 0;
  for (int hop = 0; hop < hops_ && !frontier.empty(); ++hop) {
    SamplerMetrics::Get().frontier_nodes->Record(
        static_cast<double>(frontier.size()));
    std::vector<int32_t> next;
    for (int32_t v : frontier) {
      int64_t begin = g.InDegreeBegin(v);
      int64_t degree = g.InDegree(v);
      if (degree <= fanout_) {
        for (int64_t e = begin; e < begin + degree; ++e) {
          int32_t u = g.neighbors()[e];
          if (sub.local_of.count(u) == 0) {
            AddNode(&sub, u);
            next.push_back(u);
          }
        }
      } else {
        ++truncations;
        std::vector<int64_t> slots(degree);
        for (int64_t i = 0; i < degree; ++i) slots[i] = begin + i;
        for (int i = 0; i < fanout_; ++i) {
          int64_t j = i + static_cast<int64_t>(rng->NextBounded(degree - i));
          std::swap(slots[i], slots[j]);
          int32_t u = g.neighbors()[slots[i]];
          if (sub.local_of.count(u) == 0) {
            AddNode(&sub, u);
            next.push_back(u);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  InduceEdges(g, &sub);
  if (truncations > 0) {
    SamplerMetrics::Get().fanout_truncations->Add(truncations);
  }
  XF_DCHECK_EQ(sub.nodes.size(), sub.local_of.size());
  RecordSubgraph(sub);
  return sub;
}

Subgraph HgSampler::Sample(const HeteroGraph& g,
                           const std::vector<int32_t>& seeds,
                           xfraud::Rng* rng) const {
  XF_CHECK(rng != nullptr);
  XF_CHECK_GE(depth_, 0);
  XF_CHECK_GT(width_, 0);
  Subgraph sub;
  for (int32_t seed : seeds) AddNode(&sub, seed);
  if (!seeds.empty()) sub.seed_local = sub.local_of.at(seeds.front());

  // Budget: per node type, candidate -> accumulated normalized degree.
  // (HGT Alg. 1: each sampled node adds 1/|N(v)| to each un-sampled
  // neighbour's budget so high-coverage candidates are preferred while the
  // sampled-subgraph variance stays low.)
  std::vector<std::unordered_map<int32_t, double>> budget(
      graph::kNumNodeTypes);

  auto add_to_budget = [&](int32_t v) {
    int64_t degree = g.InDegree(v);
    if (degree == 0) return;
    double contribution = 1.0 / static_cast<double>(degree);
    for (int64_t e = g.InDegreeBegin(v); e < g.InDegreeEnd(v); ++e) {
      int32_t u = g.neighbors()[e];
      if (sub.local_of.count(u) != 0) continue;
      budget[static_cast<int>(g.node_type(u))][u] += contribution;
    }
  };
  for (int32_t seed : seeds) add_to_budget(seed);

  int width = width_per_seed_
                  ? width_ * std::max<int>(1, static_cast<int>(seeds.size()))
                  : width_;
  for (int step = 0; step < depth_; ++step) {
    // Sample `width` nodes from EVERY type with prob ∝ budget^2 (HGT
    // Alg. 2), then move them into the subgraph and refresh budgets. The
    // per-type passes over the candidate maps are the cost Figure 10 sees.
    for (int type = 0; type < graph::kNumNodeTypes; ++type) {
      auto& candidates = budget[type];
      for (int pick = 0; pick < width && !candidates.empty(); ++pick) {
        // Pin the candidate order before accumulating: the raw hash-map
        // order is an artifact of the library's bucketing, and both the
        // float sum below and the cumulative-probability scan would
        // inherit it — the same rng draw could pick different nodes on a
        // different stdlib. Sorted by node id, the pick is a pure function
        // of (budget contents, rng draw) everywhere. The snapshot copy is
        // order-insensitive because it is sorted immediately.
        // xfraud-analyze: allow(unordered-iter)
        std::vector<std::pair<int32_t, double>> ordered(candidates.begin(),
                                                        candidates.end());
        std::sort(ordered.begin(), ordered.end());
        // Normalized squared-budget sampling.
        double total = 0.0;
        for (const auto& [node, score] : ordered) total += score * score;
        if (total <= 0.0) break;
        double u = rng->NextDouble() * total;
        int32_t chosen = ordered.front().first;
        double acc = 0.0;
        for (const auto& [node, score] : ordered) {
          acc += score * score;
          if (u < acc) {
            chosen = node;
            break;
          }
        }
        candidates.erase(chosen);
        AddNode(&sub, chosen);
        add_to_budget(chosen);
      }
    }
  }
  InduceEdges(g, &sub);
  RecordSubgraph(sub);
  return sub;
}

}  // namespace xfraud::sample
