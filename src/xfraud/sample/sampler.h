#ifndef XFRAUD_SAMPLE_SAMPLER_H_
#define XFRAUD_SAMPLE_SAMPLER_H_

#include <memory>
#include <vector>

#include "xfraud/common/rng.h"
#include "xfraud/graph/hetero_graph.h"
#include "xfraud/graph/mini_batch.h"
#include "xfraud/graph/subgraph.h"
#include "xfraud/nn/tensor.h"

namespace xfraud::sample {

/// The batch type and its materializer moved down to graph/mini_batch.h so
/// the KV-backed loader (kv/feature_store) can return one without including
/// sample/ headers; these aliases keep the established sample:: spelling.
using MiniBatch = graph::MiniBatch;
using graph::MakeBatch;

/// Interface of the neighbourhood samplers that feed the detector.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Samples a computation subgraph around the given seed transactions.
  virtual graph::Subgraph Sample(const graph::HeteroGraph& g,
                                 const std::vector<int32_t>& seeds,
                                 xfraud::Rng* rng) const = 0;

  /// Convenience: sample + materialize.
  MiniBatch SampleBatch(const graph::HeteroGraph& g,
                        const std::vector<int32_t>& seeds,
                        xfraud::Rng* rng) const;

  virtual const char* name() const = 0;
};

/// detector+ sampler (paper §3.2.3): GraphSAGE-style uniform k-hop expansion
/// with a per-node fan-out cap. Cheap on the sparse transaction graphs
/// (~1.5-3.4 directed edges/node) because it does no type bookkeeping.
class SageSampler : public Sampler {
 public:
  SageSampler(int hops, int fanout) : hops_(hops), fanout_(fanout) {}

  graph::Subgraph Sample(const graph::HeteroGraph& g,
                         const std::vector<int32_t>& seeds,
                         xfraud::Rng* rng) const override;

  const char* name() const override { return "sage"; }

 private:
  int hops_;
  int fanout_;
};

/// detector (= HGT) sampler: a faithful reimplementation of HGSampling
/// (Hu et al. 2020, Alg. 1/2). It maintains a per-node-type budget of
/// candidate nodes with normalized-degree scores and repeatedly samples a
/// fixed number of nodes *per type* so the subgraph keeps all node/edge
/// types at similar sizes. On sparse graphs this bookkeeping (budget
/// updates, per-type probability renormalization, repeated passes) makes it
/// markedly more expensive than SageSampler — the effect Figure 10 measures.
class HgSampler : public Sampler {
 public:
  /// `depth` sampling iterations, `width` nodes sampled per type and step.
  /// With `width_per_seed` set, the effective width is width * |seeds|, so
  /// coverage tracks the batch size like pyHGT's sampled_number does.
  HgSampler(int depth, int width, bool width_per_seed = false)
      : depth_(depth), width_(width), width_per_seed_(width_per_seed) {}

  graph::Subgraph Sample(const graph::HeteroGraph& g,
                         const std::vector<int32_t>& seeds,
                         xfraud::Rng* rng) const override;

  const char* name() const override { return "hgsampling"; }

 private:
  int depth_;
  int width_;
  bool width_per_seed_;
};

}  // namespace xfraud::sample

#endif  // XFRAUD_SAMPLE_SAMPLER_H_
