#include "xfraud/sample/batch_loader.h"

#include <algorithm>
#include <utility>

#include "xfraud/common/check.h"
#include "xfraud/common/timer.h"
#include "xfraud/kv/feature_store.h"
#include "xfraud/obs/registry.h"

namespace xfraud::sample {

namespace {

// Cached global-registry handles for the pipeline's flow metrics. Queue
// depth is sampled at each hand-off; stall/wait histograms separate "the
// producers outran the consumer" (backpressure) from "the consumer starved"
// (undersized worker pool) — the two failure modes of a prefetch pipeline.
struct LoaderMetrics {
  obs::Histogram* queue_depth;
  obs::Histogram* producer_stall_s;
  obs::Histogram* consumer_wait_s;
  obs::Counter* batches;
  obs::Counter* degraded_batches;
  obs::Counter* degraded_rows;

  static const LoaderMetrics& Get() {
    static const LoaderMetrics m = [] {
      auto& r = obs::Registry::Global();
      return LoaderMetrics{r.histogram("loader/queue_depth"),
                           r.histogram("loader/producer_stall_s"),
                           r.histogram("loader/consumer_wait_s"),
                           r.counter("loader/batches"),
                           r.counter("loader/degraded_batches"),
                           r.counter("loader/degraded_rows")};
    }();
    return m;
  }
};

}  // namespace

BatchLoader::BatchLoader(const graph::HeteroGraph* graph,
                         const Sampler* sampler,
                         std::vector<std::vector<int32_t>> seed_batches,
                         uint64_t stream_seed, LoaderOptions options)
    : graph_(graph),
      sampler_(sampler),
      seed_batches_(std::move(seed_batches)),
      stream_seed_(stream_seed),
      options_(options),
      ready_(static_cast<size_t>(std::max(1, options.prefetch_depth))) {
  XF_CHECK(graph_ != nullptr);
  XF_CHECK(sampler_ != nullptr);
  if (options_.num_workers > 0 && !seed_batches_.empty()) {
    int workers = std::min<int>(options_.num_workers,
                                static_cast<int>(seed_batches_.size()));
    workers_.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

BatchLoader::~BatchLoader() {
  // Stop claims, then release any worker blocked on backpressure.
  claim_.store(num_batches());
  ready_.Close();
  for (auto& t : workers_) t.join();
}

LoadedBatch BatchLoader::SampleOne(int64_t index) const {
  XF_DCHECK_BOUNDS(index, num_batches());
  WallTimer timer;
  Rng rng(Rng::StreamSeed(stream_seed_, static_cast<uint64_t>(index)));
  LoadedBatch out;
  out.index = index;
  out.batch = sampler_->SampleBatch(*graph_, seed_batches_[index], &rng);
  if (options_.feature_store != nullptr) FillFeaturesFromKv(&out);
  out.sample_seconds = timer.ElapsedSeconds();
  return out;
}

void BatchLoader::FillFeaturesFromKv(LoadedBatch* out) const {
  MiniBatch& batch = out->batch;
  const int64_t rows = batch.features.rows();
  const int64_t cols = batch.features.cols();
  // Start from a zero canvas so a failed fetch leaves its row imputed
  // rather than silently falling back to the in-memory copy.
  batch.features = nn::Tensor(rows, cols);
  std::vector<float> feat;
  for (int64_t local = 0; local < rows; ++local) {
    int32_t global = batch.sub.nodes[static_cast<size_t>(local)];
    Status s = options_.feature_store->ReadFeatures(global, &feat,
                                                    options_.kv_epoch);
    if (s.ok()) {
      if (static_cast<int64_t>(feat.size()) == cols) {
        std::copy(feat.begin(), feat.end(), batch.features.Row(local));
      } else {
        ++out->degraded_rows;  // shape drift: treat like a failed read
      }
    } else if (!s.IsNotFound()) {
      // Retries (the store's policy) are exhausted; degrade, don't abort.
      ++out->degraded_rows;
    }
    // NotFound = entity node without features; zeros are the contract.
  }
  out->degraded = out->degraded_rows > 0;
  if (out->degraded && obs::IsEnabled()) {
    const LoaderMetrics& metrics = LoaderMetrics::Get();
    metrics.degraded_batches->Increment();
    metrics.degraded_rows->Add(out->degraded_rows);
  }
}

void BatchLoader::WorkerLoop() {
  try {
    const LoaderMetrics& metrics = LoaderMetrics::Get();
    const int64_t n = num_batches();
    for (;;) {
      int64_t index = claim_.fetch_add(1);
      if (index >= n) return;
      LoadedBatch batch = SampleOne(index);
      if (obs::IsEnabled()) {
        metrics.queue_depth->Record(static_cast<double>(ready_.size()));
        WallTimer stall;
        if (!ready_.Push(std::move(batch))) return;  // closed: consumer done
        metrics.producer_stall_s->Record(stall.ElapsedSeconds());
      } else if (!ready_.Push(std::move(batch))) {
        return;  // closed: consumer is done
      }
    }
  } catch (...) {
    // A dying producer must not strand the consumer: park the exception,
    // then close the queue so Pop() wakes and Next() can rethrow. Closing
    // also stops sibling workers at their next Push.
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (worker_error_ == nullptr) {
        worker_error_ = std::current_exception();
      }
    }
    ready_.Close();
  }
}

std::optional<LoadedBatch> BatchLoader::Next() {
  const LoaderMetrics& metrics = LoaderMetrics::Get();
  if (next_index_ >= num_batches()) return std::nullopt;
  if (workers_.empty()) {
    LoadedBatch out = SampleOne(next_index_++);
    total_sample_seconds_ += out.sample_seconds;
    // Serial path: the consumer waits the whole inline sampling time and
    // there is never anything buffered ahead — record both so the loader
    // histograms stay comparable across worker counts.
    metrics.consumer_wait_s->Record(out.sample_seconds);
    metrics.queue_depth->Record(0.0);
    metrics.batches->Increment();
    return out;
  }
  // Workers race on the claim counter, so batches may arrive out of order;
  // park early arrivals until their turn. The reorder buffer only grows
  // while the expected batch is still being sampled, so it stays near the
  // queue bound when batch costs are comparable.
  WallTimer wait;
  for (;;) {
    auto it = reorder_.find(next_index_);
    if (it != reorder_.end()) {
      LoadedBatch out = std::move(it->second);
      XF_DCHECK_EQ(out.index, next_index_);
      reorder_.erase(it);
      ++next_index_;
      total_sample_seconds_ += out.sample_seconds;
      metrics.consumer_wait_s->Record(wait.ElapsedSeconds());
      metrics.batches->Increment();
      return out;
    }
    std::optional<LoadedBatch> item = ready_.Pop();
    if (!item.has_value()) {
      // Queue closed before the epoch finished: either a worker died (its
      // exception surfaces here) or the loader is being torn down.
      RethrowWorkerError();
      return std::nullopt;
    }
    reorder_.emplace(item->index, std::move(*item));
  }
}

void BatchLoader::RethrowWorkerError() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    err = worker_error_;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

std::vector<std::vector<int32_t>> BatchLoader::MakeSeedBatches(
    const std::vector<int32_t>& nodes, int batch_size) {
  std::vector<std::vector<int32_t>> batches;
  if (batch_size <= 0) batch_size = 1;
  batches.reserve((nodes.size() + batch_size - 1) / batch_size);
  for (size_t begin = 0; begin < nodes.size();
       begin += static_cast<size_t>(batch_size)) {
    size_t end = std::min(begin + static_cast<size_t>(batch_size),
                          nodes.size());
    batches.emplace_back(nodes.begin() + begin, nodes.begin() + end);
  }
  return batches;
}

}  // namespace xfraud::sample
