#ifndef XFRAUD_SAMPLE_BATCH_LOADER_H_
#define XFRAUD_SAMPLE_BATCH_LOADER_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "xfraud/common/mpmc_queue.h"
#include "xfraud/common/rng.h"
#include "xfraud/kv/kvstore.h"
#include "xfraud/sample/sampler.h"

namespace xfraud::kv {
class FeatureStore;
}  // namespace xfraud::kv

namespace xfraud::sample {

/// Knobs of the prefetching batch pipeline, exposed through
/// train::TrainOptions / dist::DistributedOptions and the CLI.
struct LoaderOptions {
  /// Sampler worker threads. 0 = serial: Next() samples inline on the
  /// caller's thread (the reference path the pipeline must reproduce
  /// bit-for-bit).
  int num_workers = 0;
  /// Bound of the ready-batch queue: how far the samplers may run ahead of
  /// the consumer before backpressure blocks them.
  int prefetch_depth = 4;
  /// When set, every batch's feature rows are re-fetched from this
  /// KV-backed store (the paper's serving topology) instead of trusting the
  /// in-memory graph's copy. A row whose fetch fails after the store's
  /// retry policy is exhausted is zero-imputed and the batch flagged
  /// `degraded` — the epoch keeps going instead of aborting. nullptr (the
  /// default) keeps the in-memory feature path.
  const kv::FeatureStore* feature_store = nullptr;
  /// KV epoch every feature_store read is issued at. The default (head)
  /// reproduces the frozen-store behavior; streaming consumers pin one
  /// published epoch (kv::SnapshotHandle) so a whole training epoch reads a
  /// consistent snapshot while the ingestor advances the head.
  uint64_t kv_epoch = kv::kHeadEpoch;
};

/// One produced mini-batch plus its provenance and cost.
struct LoadedBatch {
  int64_t index = 0;           // position in the epoch's batch sequence
  MiniBatch batch;
  double sample_seconds = 0.0;  // wall time spent sampling this batch
  /// Degraded-mode bookkeeping (KV feature path only): rows whose feature
  /// fetch exhausted retries and was zero-imputed.
  bool degraded = false;
  int64_t degraded_rows = 0;
};

/// Pipelined mini-batch producer: the one batch engine behind
/// Trainer::Train, Trainer::Evaluate, the distributed DDP simulation, and
/// the incremental retrainer.
///
/// The epoch's work is a fixed list of seed-node batches. Each batch i is
/// sampled with its own RNG seeded Rng::StreamSeed(stream_seed, i) — a
/// pure function of (stream_seed, i) — so the sampled neighbourhoods do not
/// depend on which thread produces them or in what order. Workers claim
/// indices from a shared atomic counter, sample ahead of the consumer, and
/// push results through a BoundedQueue (capacity = prefetch_depth, the
/// backpressure bound); the consumer reorders out-of-order arrivals so
/// Next() always yields batch 0, 1, 2, ... exactly as the serial path
/// would. See DESIGN.md "Batch pipeline architecture".
class BatchLoader {
 public:
  /// `graph` and `sampler` must outlive the loader. `seed_batches[i]` are
  /// the seed node ids of batch i.
  BatchLoader(const graph::HeteroGraph* graph, const Sampler* sampler,
              std::vector<std::vector<int32_t>> seed_batches,
              uint64_t stream_seed, LoaderOptions options);

  /// Stops the workers (releasing any blocked on backpressure) and joins.
  ~BatchLoader();

  BatchLoader(const BatchLoader&) = delete;
  BatchLoader& operator=(const BatchLoader&) = delete;

  /// Returns the next batch in sequence order, or nullopt after the last.
  /// Serial mode samples here; pipelined mode pops from the prefetch queue.
  std::optional<LoadedBatch> Next();

  int64_t num_batches() const {
    return static_cast<int64_t>(seed_batches_.size());
  }

  /// Sum of sample_seconds over the batches returned so far — the epoch's
  /// total sampling cost, measured where it runs (worker or caller thread).
  double total_sample_seconds() const { return total_sample_seconds_; }

  /// Splits `nodes` into consecutive batches of `batch_size` seeds (the
  /// last one may be short). Shared batch-plan helper for all consumers.
  static std::vector<std::vector<int32_t>> MakeSeedBatches(
      const std::vector<int32_t>& nodes, int batch_size);

 private:
  LoadedBatch SampleOne(int64_t index) const;
  /// KV feature path: repaints the batch's feature tensor from the
  /// configured FeatureStore, zero-imputing rows whose reads fail.
  void FillFeaturesFromKv(LoadedBatch* out) const;
  void WorkerLoop();
  /// Rethrows the first exception a worker died with, if any.
  void RethrowWorkerError();

  const graph::HeteroGraph* graph_;
  const Sampler* sampler_;
  const std::vector<std::vector<int32_t>> seed_batches_;
  const uint64_t stream_seed_;
  const LoaderOptions options_;

  // Serial-mode cursor / pipelined-mode next expected index.
  int64_t next_index_ = 0;
  double total_sample_seconds_ = 0.0;

  // Pipelined mode only.
  std::atomic<int64_t> claim_{0};
  BoundedQueue<LoadedBatch> ready_;
  std::map<int64_t, LoadedBatch> reorder_;
  std::vector<std::thread> workers_;

  // Producer-failure propagation: the first exception thrown by a worker is
  // parked here (and the queue closed) so the consumer rethrows it from
  // Next() instead of hanging on a queue nobody will fill.
  std::mutex error_mu_;
  std::exception_ptr worker_error_;
};

}  // namespace xfraud::sample

#endif  // XFRAUD_SAMPLE_BATCH_LOADER_H_
