file(REMOVE_RECURSE
  "../bench/bench_ablation_detector"
  "../bench/bench_ablation_detector.pdb"
  "CMakeFiles/bench_ablation_detector.dir/bench_ablation_detector.cc.o"
  "CMakeFiles/bench_ablation_detector.dir/bench_ablation_detector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
