# Empty compiler generated dependencies file for bench_ablation_detector.
# This may be replaced when dependencies are built.
