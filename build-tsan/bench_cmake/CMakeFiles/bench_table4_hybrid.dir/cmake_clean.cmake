file(REMOVE_RECURSE
  "../bench/bench_table4_hybrid"
  "../bench/bench_table4_hybrid.pdb"
  "CMakeFiles/bench_table4_hybrid.dir/bench_table4_hybrid.cc.o"
  "CMakeFiles/bench_table4_hybrid.dir/bench_table4_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
