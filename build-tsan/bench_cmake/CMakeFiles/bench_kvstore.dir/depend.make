# Empty dependencies file for bench_kvstore.
# This may be replaced when dependencies are built.
