file(REMOVE_RECURSE
  "../bench/bench_kvstore"
  "../bench/bench_kvstore.pdb"
  "CMakeFiles/bench_kvstore.dir/bench_kvstore.cc.o"
  "CMakeFiles/bench_kvstore.dir/bench_kvstore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
