# Empty dependencies file for bench_prefilter_pipeline.
# This may be replaced when dependencies are built.
