file(REMOVE_RECURSE
  "../bench/bench_prefilter_pipeline"
  "../bench/bench_prefilter_pipeline.pdb"
  "CMakeFiles/bench_prefilter_pipeline.dir/bench_prefilter_pipeline.cc.o"
  "CMakeFiles/bench_prefilter_pipeline.dir/bench_prefilter_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefilter_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
