file(REMOVE_RECURSE
  "../bench/bench_table1_centrality"
  "../bench/bench_table1_centrality.pdb"
  "CMakeFiles/bench_table1_centrality.dir/bench_table1_centrality.cc.o"
  "CMakeFiles/bench_table1_centrality.dir/bench_table1_centrality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
