# Empty dependencies file for bench_table1_centrality.
# This may be replaced when dependencies are built.
