file(REMOVE_RECURSE
  "../bench/bench_nn_ops"
  "../bench/bench_nn_ops.pdb"
  "CMakeFiles/bench_nn_ops.dir/bench_nn_ops.cc.o"
  "CMakeFiles/bench_nn_ops.dir/bench_nn_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
