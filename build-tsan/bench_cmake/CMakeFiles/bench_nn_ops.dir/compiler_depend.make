# Empty compiler generated dependencies file for bench_nn_ops.
# This may be replaced when dependencies are built.
