file(REMOVE_RECURSE
  "../bench/bench_table8_agg"
  "../bench/bench_table8_agg.pdb"
  "CMakeFiles/bench_table8_agg.dir/bench_table8_agg.cc.o"
  "CMakeFiles/bench_table8_agg.dir/bench_table8_agg.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
