# Empty dependencies file for bench_table8_agg.
# This may be replaced when dependencies are built.
