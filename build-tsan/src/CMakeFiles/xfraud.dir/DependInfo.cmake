
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xfraud/baselines/gat.cc" "src/CMakeFiles/xfraud.dir/xfraud/baselines/gat.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/baselines/gat.cc.o.d"
  "/root/repo/src/xfraud/baselines/gem.cc" "src/CMakeFiles/xfraud.dir/xfraud/baselines/gem.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/baselines/gem.cc.o.d"
  "/root/repo/src/xfraud/common/logging.cc" "src/CMakeFiles/xfraud.dir/xfraud/common/logging.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/common/logging.cc.o.d"
  "/root/repo/src/xfraud/common/rng.cc" "src/CMakeFiles/xfraud.dir/xfraud/common/rng.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/common/rng.cc.o.d"
  "/root/repo/src/xfraud/common/status.cc" "src/CMakeFiles/xfraud.dir/xfraud/common/status.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/common/status.cc.o.d"
  "/root/repo/src/xfraud/common/table_printer.cc" "src/CMakeFiles/xfraud.dir/xfraud/common/table_printer.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/common/table_printer.cc.o.d"
  "/root/repo/src/xfraud/common/thread_pool.cc" "src/CMakeFiles/xfraud.dir/xfraud/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/common/thread_pool.cc.o.d"
  "/root/repo/src/xfraud/core/detector.cc" "src/CMakeFiles/xfraud.dir/xfraud/core/detector.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/core/detector.cc.o.d"
  "/root/repo/src/xfraud/core/gnn_model.cc" "src/CMakeFiles/xfraud.dir/xfraud/core/gnn_model.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/core/gnn_model.cc.o.d"
  "/root/repo/src/xfraud/core/hetero_conv.cc" "src/CMakeFiles/xfraud.dir/xfraud/core/hetero_conv.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/core/hetero_conv.cc.o.d"
  "/root/repo/src/xfraud/data/annotation.cc" "src/CMakeFiles/xfraud.dir/xfraud/data/annotation.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/data/annotation.cc.o.d"
  "/root/repo/src/xfraud/data/generator.cc" "src/CMakeFiles/xfraud.dir/xfraud/data/generator.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/data/generator.cc.o.d"
  "/root/repo/src/xfraud/data/log_io.cc" "src/CMakeFiles/xfraud.dir/xfraud/data/log_io.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/data/log_io.cc.o.d"
  "/root/repo/src/xfraud/data/prefilter.cc" "src/CMakeFiles/xfraud.dir/xfraud/data/prefilter.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/data/prefilter.cc.o.d"
  "/root/repo/src/xfraud/dist/distributed.cc" "src/CMakeFiles/xfraud.dir/xfraud/dist/distributed.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/dist/distributed.cc.o.d"
  "/root/repo/src/xfraud/dist/partition.cc" "src/CMakeFiles/xfraud.dir/xfraud/dist/partition.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/dist/partition.cc.o.d"
  "/root/repo/src/xfraud/explain/centrality.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/centrality.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/centrality.cc.o.d"
  "/root/repo/src/xfraud/explain/evaluation.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/evaluation.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/evaluation.cc.o.d"
  "/root/repo/src/xfraud/explain/feature_importance.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/feature_importance.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/feature_importance.cc.o.d"
  "/root/repo/src/xfraud/explain/gnn_explainer.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/gnn_explainer.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/gnn_explainer.cc.o.d"
  "/root/repo/src/xfraud/explain/hit_rate.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/hit_rate.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/hit_rate.cc.o.d"
  "/root/repo/src/xfraud/explain/hybrid.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/hybrid.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/hybrid.cc.o.d"
  "/root/repo/src/xfraud/explain/visualize.cc" "src/CMakeFiles/xfraud.dir/xfraud/explain/visualize.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/explain/visualize.cc.o.d"
  "/root/repo/src/xfraud/graph/graph_builder.cc" "src/CMakeFiles/xfraud.dir/xfraud/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/graph/graph_builder.cc.o.d"
  "/root/repo/src/xfraud/graph/hetero_graph.cc" "src/CMakeFiles/xfraud.dir/xfraud/graph/hetero_graph.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/graph/hetero_graph.cc.o.d"
  "/root/repo/src/xfraud/graph/serialize.cc" "src/CMakeFiles/xfraud.dir/xfraud/graph/serialize.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/graph/serialize.cc.o.d"
  "/root/repo/src/xfraud/graph/subgraph.cc" "src/CMakeFiles/xfraud.dir/xfraud/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/graph/subgraph.cc.o.d"
  "/root/repo/src/xfraud/kv/feature_store.cc" "src/CMakeFiles/xfraud.dir/xfraud/kv/feature_store.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/kv/feature_store.cc.o.d"
  "/root/repo/src/xfraud/kv/log_kv.cc" "src/CMakeFiles/xfraud.dir/xfraud/kv/log_kv.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/kv/log_kv.cc.o.d"
  "/root/repo/src/xfraud/kv/mem_kv.cc" "src/CMakeFiles/xfraud.dir/xfraud/kv/mem_kv.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/kv/mem_kv.cc.o.d"
  "/root/repo/src/xfraud/kv/sharded_kv.cc" "src/CMakeFiles/xfraud.dir/xfraud/kv/sharded_kv.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/kv/sharded_kv.cc.o.d"
  "/root/repo/src/xfraud/la/matrix.cc" "src/CMakeFiles/xfraud.dir/xfraud/la/matrix.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/la/matrix.cc.o.d"
  "/root/repo/src/xfraud/nn/modules.cc" "src/CMakeFiles/xfraud.dir/xfraud/nn/modules.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/nn/modules.cc.o.d"
  "/root/repo/src/xfraud/nn/ops.cc" "src/CMakeFiles/xfraud.dir/xfraud/nn/ops.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/nn/ops.cc.o.d"
  "/root/repo/src/xfraud/nn/optim.cc" "src/CMakeFiles/xfraud.dir/xfraud/nn/optim.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/nn/optim.cc.o.d"
  "/root/repo/src/xfraud/nn/serialize.cc" "src/CMakeFiles/xfraud.dir/xfraud/nn/serialize.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/nn/serialize.cc.o.d"
  "/root/repo/src/xfraud/nn/tensor.cc" "src/CMakeFiles/xfraud.dir/xfraud/nn/tensor.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/nn/tensor.cc.o.d"
  "/root/repo/src/xfraud/nn/variable.cc" "src/CMakeFiles/xfraud.dir/xfraud/nn/variable.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/nn/variable.cc.o.d"
  "/root/repo/src/xfraud/sample/batch_loader.cc" "src/CMakeFiles/xfraud.dir/xfraud/sample/batch_loader.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/sample/batch_loader.cc.o.d"
  "/root/repo/src/xfraud/sample/sampler.cc" "src/CMakeFiles/xfraud.dir/xfraud/sample/sampler.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/sample/sampler.cc.o.d"
  "/root/repo/src/xfraud/train/incremental.cc" "src/CMakeFiles/xfraud.dir/xfraud/train/incremental.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/train/incremental.cc.o.d"
  "/root/repo/src/xfraud/train/metrics.cc" "src/CMakeFiles/xfraud.dir/xfraud/train/metrics.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/train/metrics.cc.o.d"
  "/root/repo/src/xfraud/train/trainer.cc" "src/CMakeFiles/xfraud.dir/xfraud/train/trainer.cc.o" "gcc" "src/CMakeFiles/xfraud.dir/xfraud/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
