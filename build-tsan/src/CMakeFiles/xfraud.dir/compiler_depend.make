# Empty compiler generated dependencies file for xfraud.
# This may be replaced when dependencies are built.
