file(REMOVE_RECURSE
  "libxfraud.a"
)
