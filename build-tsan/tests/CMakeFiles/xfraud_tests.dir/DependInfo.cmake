
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/batch_loader_test.cc" "tests/CMakeFiles/xfraud_tests.dir/batch_loader_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/batch_loader_test.cc.o.d"
  "/root/repo/tests/centrality_test.cc" "tests/CMakeFiles/xfraud_tests.dir/centrality_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/centrality_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/xfraud_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/xfraud_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/dist_test.cc" "tests/CMakeFiles/xfraud_tests.dir/dist_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/dist_test.cc.o.d"
  "/root/repo/tests/explainer_test.cc" "tests/CMakeFiles/xfraud_tests.dir/explainer_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/explainer_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/xfraud_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/hetero_conv_test.cc" "tests/CMakeFiles/xfraud_tests.dir/hetero_conv_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/hetero_conv_test.cc.o.d"
  "/root/repo/tests/incremental_test.cc" "tests/CMakeFiles/xfraud_tests.dir/incremental_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/incremental_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/xfraud_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/kv_test.cc" "tests/CMakeFiles/xfraud_tests.dir/kv_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/kv_test.cc.o.d"
  "/root/repo/tests/la_test.cc" "tests/CMakeFiles/xfraud_tests.dir/la_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/la_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/xfraud_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/xfraud_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/nn_grad_test.cc" "tests/CMakeFiles/xfraud_tests.dir/nn_grad_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/nn_grad_test.cc.o.d"
  "/root/repo/tests/nn_module_test.cc" "tests/CMakeFiles/xfraud_tests.dir/nn_module_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/nn_module_test.cc.o.d"
  "/root/repo/tests/prefilter_test.cc" "tests/CMakeFiles/xfraud_tests.dir/prefilter_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/prefilter_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xfraud_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sampler_test.cc" "tests/CMakeFiles/xfraud_tests.dir/sampler_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/sampler_test.cc.o.d"
  "/root/repo/tests/study_test.cc" "tests/CMakeFiles/xfraud_tests.dir/study_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/study_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/xfraud_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/xfraud_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/xfraud_tests.dir/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/xfraud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
