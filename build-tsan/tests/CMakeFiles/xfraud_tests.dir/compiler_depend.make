# Empty compiler generated dependencies file for xfraud_tests.
# This may be replaced when dependencies are built.
