# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(xfraud_tests "/root/repo/build-tsan/tests/xfraud_tests")
set_tests_properties(xfraud_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
