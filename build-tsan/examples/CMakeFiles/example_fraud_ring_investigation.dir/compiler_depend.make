# Empty compiler generated dependencies file for example_fraud_ring_investigation.
# This may be replaced when dependencies are built.
