file(REMOVE_RECURSE
  "CMakeFiles/example_fraud_ring_investigation.dir/fraud_ring_investigation.cpp.o"
  "CMakeFiles/example_fraud_ring_investigation.dir/fraud_ring_investigation.cpp.o.d"
  "example_fraud_ring_investigation"
  "example_fraud_ring_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fraud_ring_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
