# Empty compiler generated dependencies file for example_incremental_retraining.
# This may be replaced when dependencies are built.
