file(REMOVE_RECURSE
  "CMakeFiles/example_incremental_retraining.dir/incremental_retraining.cpp.o"
  "CMakeFiles/example_incremental_retraining.dir/incremental_retraining.cpp.o.d"
  "example_incremental_retraining"
  "example_incremental_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incremental_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
