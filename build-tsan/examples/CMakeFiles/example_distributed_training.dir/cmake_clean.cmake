file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_training.dir/distributed_training.cpp.o"
  "CMakeFiles/example_distributed_training.dir/distributed_training.cpp.o.d"
  "example_distributed_training"
  "example_distributed_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
