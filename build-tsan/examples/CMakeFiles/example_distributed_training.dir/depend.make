# Empty dependencies file for example_distributed_training.
# This may be replaced when dependencies are built.
