file(REMOVE_RECURSE
  "CMakeFiles/example_kv_feature_store.dir/kv_feature_store.cpp.o"
  "CMakeFiles/example_kv_feature_store.dir/kv_feature_store.cpp.o.d"
  "example_kv_feature_store"
  "example_kv_feature_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kv_feature_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
