# Empty compiler generated dependencies file for example_kv_feature_store.
# This may be replaced when dependencies are built.
