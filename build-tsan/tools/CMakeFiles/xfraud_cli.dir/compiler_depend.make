# Empty compiler generated dependencies file for xfraud_cli.
# This may be replaced when dependencies are built.
