file(REMOVE_RECURSE
  "CMakeFiles/xfraud_cli.dir/xfraud_cli.cc.o"
  "CMakeFiles/xfraud_cli.dir/xfraud_cli.cc.o.d"
  "xfraud_cli"
  "xfraud_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfraud_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
