#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xfraud::lint {

namespace {

namespace fs = std::filesystem;

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when src[quote] is the '"' of a raw-string literal: immediately
/// preceded by an R / LR / uR / UR / u8R prefix that is not glued onto a
/// longer identifier (`FOOR"..."` is a macro-pasted ordinary string).
bool IsRawStringQuote(const std::string& src, size_t quote) {
  if (quote == 0 || src[quote - 1] != 'R') return false;
  size_t start = quote - 1;  // index of 'R'
  if (start > 0) {
    if (src[start - 1] == '8' && start >= 2 && src[start - 2] == 'u') {
      start -= 2;
    } else if (src[start - 1] == 'L' || src[start - 1] == 'u' ||
               src[start - 1] == 'U') {
      start -= 1;
    }
  }
  return start == 0 || !IsWordChar(src[start - 1]);
}

/// For a raw string opening at src[quote] == '"', finds the '(' that ends
/// the d-char-seq. Returns npos when no well-formed delimiter follows (at
/// most 16 d-chars, none of space/paren/backslash/newline), in which case
/// the literal is scanned as an ordinary string.
size_t RawDelimiterOpen(const std::string& src, size_t quote) {
  for (size_t j = quote + 1; j < src.size() && j <= quote + 17; ++j) {
    char d = src[j];
    if (d == '(') return j;
    if (d == ' ' || d == ')' || d == '\\' || d == '\n' || d == '"') break;
  }
  return std::string::npos;
}

bool ShouldSkipDir(const fs::path& dir) {
  std::string name = dir.filename().string();
  return name == ".git" || name.ends_with("_fixtures") ||
         name.rfind("build", 0) == 0 || name == "CMakeFiles";
}

bool LintableFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

SplitSource SplitCodeComments(const std::string& src) {
  SplitSource out;
  out.code.assign(src.size(), ' ');
  out.comments.assign(src.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
          break;
        }
        if (c == '"') {
          if (IsRawStringQuote(src, i)) {
            size_t open = RawDelimiterOpen(src, i);
            if (open != std::string::npos) {
              raw_delim = ")" + src.substr(i + 1, open - (i + 1)) + "\"";
              out.code[i] = '"';
              state = State::kRaw;
              i = open;  // literal contents blanked from here on
              break;
            }
          }
          state = State::kString;
          out.code[i] = '"';
          break;
        }
        if (c == '\'' && (i == 0 || !IsWordChar(src[i - 1]))) {
          state = State::kChar;
          out.code[i] = '\'';
          break;
        }
        out.code[i] = c;
        break;
      case State::kLine:
        out.comments[i] = c;
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          ++i;
          state = State::kCode;
        } else {
          out.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type begin = 0;
  while (begin <= text.size()) {
    std::string::size_type end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

bool HasWord(const std::string& line, const std::string& word,
             bool requires_call) {
  std::string::size_type pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    bool start_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    std::string::size_type end = pos + word.size();
    bool end_ok = end >= line.size() || !IsWordChar(line[end]);
    if (start_ok && end_ok) {
      if (!requires_call) return true;
      while (end < line.size() && line[end] == ' ') ++end;
      if (end < line.size() && line[end] == '(') return true;
    }
    pos += word.size();
  }
  return false;
}

std::vector<std::vector<std::string>> ParseAllowDirectives(
    const std::vector<std::string>& comment_lines, const std::string& tag) {
  std::vector<std::vector<std::string>> allowed(comment_lines.size());
  for (size_t i = 0; i < comment_lines.size(); ++i) {
    std::string::size_type tag_pos = comment_lines[i].find(tag);
    if (tag_pos == std::string::npos) continue;
    std::string::size_type open =
        comment_lines[i].find("allow(", tag_pos + tag.size());
    if (open == std::string::npos) continue;
    std::string::size_type close = comment_lines[i].find(')', open);
    if (close == std::string::npos) continue;
    std::string args =
        comment_lines[i].substr(open + 6, close - (open + 6));
    std::stringstream ss(args);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove(rule.begin(), rule.end(), ' '), rule.end());
      if (!rule.empty()) allowed[i].push_back(rule);
    }
  }
  return allowed;
}

bool ListSourceFiles(const std::vector<std::string>& roots,
                     std::vector<std::string>* files, std::string* error) {
  for (const std::string& root : roots) {
    std::error_code ec;
    fs::file_status st = fs::status(root, ec);
    if (ec) {
      *error = "cannot stat " + root + ": " + ec.message();
      return false;
    }
    if (fs::is_regular_file(st)) {
      files->push_back(root);
      continue;
    }
    if (!fs::is_directory(st)) {
      *error = root + " is neither a file nor a directory";
      return false;
    }
    fs::recursive_directory_iterator it(root, ec), end;
    if (ec) {
      *error = "cannot walk " + root + ": " + ec.message();
      return false;
    }
    for (; it != end; it.increment(ec)) {
      if (ec) {
        *error = "walk failed under " + root + ": " + ec.message();
        return false;
      }
      if (it->is_directory() && ShouldSkipDir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && LintableFile(it->path())) {
        files->push_back(it->path().string());
      }
    }
  }
  std::sort(files->begin(), files->end());
  return true;
}

bool ReadFileToString(const std::string& path, std::string* contents,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *contents = buf.str();
  return true;
}

namespace {

struct FileScope {
  bool is_header = false;
  bool in_library = false;   // under src/xfraud — library-only rules
  bool rng_exempt = false;   // the one sanctioned randomness source
  bool io_exempt = false;    // sanctioned output sinks
  bool durable_write_exempt = false;  // sanctioned file-write primitives
  bool clock_exempt = false;  // common/ wraps the raw clock for everyone
  bool socket_exempt = false;  // dist/ is the sanctioned transport layer
};

FileScope ClassifyPath(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  FileScope scope;
  scope.is_header = p.size() >= 2 && (p.ends_with(".h") || p.ends_with(".hpp"));
  scope.in_library = p.find("src/xfraud") != std::string::npos;
  scope.rng_exempt = p.find("common/rng") != std::string::npos;
  scope.io_exempt = p.find("common/logging") != std::string::npos ||
                    p.find("common/table_printer") != std::string::npos ||
                    p.find("/obs/") != std::string::npos;
  // The two sanctioned write paths: the atomic-write helper itself and the
  // log-structured store's append/compact machinery.
  scope.durable_write_exempt =
      p.find("common/atomic_file") != std::string::npos ||
      p.find("kv/log_kv") != std::string::npos;
  // common/ (clock.h/.cc, timer.h) is where raw std::chrono lives; the rest
  // of the library must take an injectable Clock so tests can use virtual
  // time.
  scope.clock_exempt = p.find("common/") != std::string::npos;
  // Raw socket syscalls live behind the dist::Communicator transport; only
  // src/xfraud/dist (sockets, rendezvous, ring framing) may issue them.
  scope.socket_exempt = p.find("src/xfraud/dist") != std::string::npos;
  return scope;
}

class Linter {
 public:
  Linter(const std::string& path, const std::string& contents)
      : path_(path),
        scope_(ClassifyPath(path)),
        split_(SplitCodeComments(contents)),
        code_lines_(SplitLines(split_.code)),
        comment_lines_(SplitLines(split_.comments)),
        allowed_(ParseAllowDirectives(comment_lines_, "xfraud-lint:")) {}

  std::vector<Finding> Run() {
    CheckNondeterminism();
    CheckRawClock();
    CheckRawSocket();
    CheckNakedNew();
    CheckRawIo();
    CheckDirectWrite();
    CheckUsingNamespace();
    CheckHeaderGuard();
    CheckCatchAll();
    CheckTodoIssue();
    return std::move(findings_);
  }

 private:
  bool Allowed(size_t line0, const std::string& rule) const {
    for (size_t l = line0 > 0 ? line0 - 1 : 0; l <= line0; ++l) {
      if (l >= allowed_.size()) break;
      for (const std::string& r : allowed_[l]) {
        if (r == rule) return true;
      }
    }
    return false;
  }

  void Report(size_t line0, const std::string& rule,
              const std::string& message) {
    if (Allowed(line0, rule)) return;
    findings_.push_back(
        {path_, static_cast<int>(line0) + 1, rule, message});
  }

  void CheckNondeterminism() {
    if (scope_.rng_exempt) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      if (HasWord(line, "rand", true) || HasWord(line, "srand", true)) {
        Report(i, "nondeterminism",
               "rand()/srand() break bit-reproducible sampling; take an "
               "explicit xfraud::Rng");
      }
      if (HasWord(line, "random_device", false)) {
        Report(i, "nondeterminism",
               "std::random_device is nondeterministic; seed through "
               "common/rng instead");
      }
      if (HasWord(line, "time", true)) {
        Report(i, "nondeterminism",
               "time() as an input makes runs unreproducible; thread a seed "
               "or WallTimer through instead");
      }
    }
  }

  /// Library code that reads std::chrono clocks or sleeps directly cannot
  /// be driven by a VirtualClock, so its timeouts/deadlines are untestable
  /// without real waiting. Everything outside common/ must go through the
  /// injectable xfraud::Clock (common/clock.h).
  void CheckRawClock() {
    if (!scope_.in_library || scope_.clock_exempt) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      bool clock_read = (HasWord(line, "steady_clock", false) ||
                         HasWord(line, "system_clock", false) ||
                         HasWord(line, "high_resolution_clock", false)) &&
                        line.find("::now") != std::string::npos;
      bool raw_sleep = HasWord(line, "sleep_for", true) ||
                       HasWord(line, "sleep_until", true);
      if (clock_read || raw_sleep) {
        Report(i, "no-raw-clock",
               "raw std::chrono clock/sleep in library code defeats virtual "
               "time; take an xfraud::Clock (common/clock.h)");
      }
    }
  }

  /// Socket syscalls scattered through library code bypass the
  /// dist::Communicator abstraction — its deadline budgets, error mapping,
  /// retry policy, and poison-on-failure semantics. Everything outside
  /// src/xfraud/dist must either speak Communicator or add a sanctioned
  /// primitive to the transport layer.
  void CheckRawSocket() {
    if (!scope_.in_library || scope_.socket_exempt) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      bool hit = false;
      // Lifecycle calls plus the data-plane and option syscalls: the serve/
      // tier (and everything else) speaks CRC'd frames through
      // dist/socket_transport, so even a bare send()/recv()/poll() on a
      // smuggled fd is a layering break.
      for (const char* fn :
           {"socket", "socketpair", "connect", "bind", "listen", "accept",
            "send", "recv", "sendto", "recvfrom", "setsockopt", "getsockopt",
            "shutdown", "poll"}) {
        if (HasWord(line, fn, /*requires_call=*/true)) {
          hit = true;
          break;
        }
      }
      if (hit) {
        Report(i, "no-raw-socket",
               "raw socket syscall outside src/xfraud/dist bypasses the "
               "Communicator transport (deadlines, retries, error mapping); "
               "use dist::Communicator or extend dist/socket_transport");
      }
    }
  }

  void CheckNakedNew() {
    if (!scope_.in_library) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      if (HasWord(line, "new", false)) {
        Report(i, "no-naked-new",
               "naked new in library code; use make_unique/make_shared or a "
               "container");
      }
      if (HasWord(line, "malloc", true) || HasWord(line, "calloc", true) ||
          HasWord(line, "realloc", true) || HasWord(line, "free", true)) {
        Report(i, "no-naked-new",
               "manual malloc/free in library code; use RAII containers");
      }
    }
  }

  void CheckRawIo() {
    if (!scope_.in_library || scope_.io_exempt) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      bool hit = line.find("std::cout") != std::string::npos ||
                 HasWord(line, "printf", true) ||
                 HasWord(line, "fprintf", true) ||
                 HasWord(line, "puts", true);
      if (hit) {
        Report(i, "no-raw-io",
               "direct stdout/printf in library code; route through "
               "XF_LOG/obs or take an std::ostream&");
      }
    }
  }

  /// A write that goes through std::ofstream / fopen / ::open can be torn
  /// by a crash between the first byte and the last. Library code must
  /// write durable files through common/atomic_file (tmp + fsync + rename,
  /// optional CRC footer); only the allowlisted sinks (the helper itself
  /// and the log-structured KV, whose append/replay protocol handles torn
  /// tails by design) may open files for writing directly.
  void CheckDirectWrite() {
    if (!scope_.in_library || scope_.durable_write_exempt) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      bool hit = HasWord(line, "ofstream", false) ||
                 HasWord(line, "fopen", true);
      if (!hit) {
        std::string::size_type pos = line.find("::open");
        if (pos != std::string::npos) {
          std::string::size_type j = pos + 6;
          while (j < line.size() && line[j] == ' ') ++j;
          hit = j < line.size() && line[j] == '(';
        }
      }
      if (hit) {
        Report(i, "no-direct-write",
               "direct file write in library code can tear on crash; use "
               "common/atomic_file (AtomicWriteFile[WithCrc])");
      }
    }
  }

  void CheckUsingNamespace() {
    if (!scope_.is_header) return;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string& line = code_lines_[i];
      if (HasWord(line, "using", false) && HasWord(line, "namespace", false)) {
        std::string::size_type u = line.find("using");
        std::string::size_type n = line.find("namespace", u);
        if (n != std::string::npos) {
          Report(i, "no-using-namespace",
                 "using namespace in a header leaks into every includer");
        }
      }
    }
  }

  void CheckHeaderGuard() {
    if (!scope_.is_header) return;
    bool pragma_once = false;
    bool ifndef = false;
    bool define = false;
    size_t limit = std::min<size_t>(code_lines_.size(), 50);
    for (size_t i = 0; i < limit; ++i) {
      const std::string& line = code_lines_[i];
      if (line.find("#pragma once") != std::string::npos) pragma_once = true;
      if (line.find("#ifndef") != std::string::npos) ifndef = true;
      if (ifndef && line.find("#define") != std::string::npos) define = true;
    }
    if (!pragma_once && !(ifndef && define)) {
      Report(0, "header-guard",
             "header lacks an include guard (#pragma once or "
             "#ifndef/#define pair)");
    }
  }

  void CheckCatchAll() {
    if (!scope_.in_library) return;
    const std::string& code = split_.code;
    size_t line0 = 0;
    for (size_t i = 0; i < code.size(); ++i) {
      if (code[i] == '\n') {
        ++line0;
        continue;
      }
      if (code.compare(i, 5, "catch") != 0) continue;
      if (i > 0 && IsWordChar(code[i - 1])) continue;
      if (i + 5 < code.size() && IsWordChar(code[i + 5])) continue;
      size_t j = i + 5;
      while (j < code.size() &&
             (code[j] == ' ' || code[j] == '\n' || code[j] == '\t')) {
        ++j;
      }
      if (j >= code.size() || code[j] != '(') continue;
      size_t close = code.find(')', j);
      if (close == std::string::npos) continue;
      std::string params = code.substr(j + 1, close - j - 1);
      params.erase(std::remove_if(params.begin(), params.end(),
                                  [](char c) { return std::isspace(
                                        static_cast<unsigned char>(c)); }),
                   params.end());
      if (params != "...") continue;
      // Walk the handler block and demand the exception is rethrown,
      // captured, or converted into a returned error.
      size_t open = code.find('{', close);
      if (open == std::string::npos) continue;
      int depth = 1;
      size_t k = open + 1;
      while (k < code.size() && depth > 0) {
        if (code[k] == '{') ++depth;
        if (code[k] == '}') --depth;
        ++k;
      }
      std::string body = code.substr(open + 1, k - open - 2);
      bool handled = HasWord(body, "throw", false) ||
                     body.find("current_exception") != std::string::npos ||
                     HasWord(body, "return", false);
      if (!handled) {
        Report(line0, "no-catch-all",
               "catch (...) swallows the exception; rethrow, capture via "
               "std::current_exception, or convert to Status");
      }
    }
  }

  void CheckTodoIssue() {
    for (size_t i = 0; i < comment_lines_.size(); ++i) {
      const std::string& line = comment_lines_[i];
      for (const char* tag : {"TODO", "FIXME"}) {
        std::string::size_type pos = line.find(tag);
        if (pos == std::string::npos) continue;
        // Accept TODO(#123) / FIXME(#123) — a trackable reference.
        std::string::size_type after = pos + std::string(tag).size();
        bool has_issue = line.compare(after, 2, "(#") == 0 &&
                         after + 2 < line.size() &&
                         std::isdigit(static_cast<unsigned char>(
                             line[after + 2])) != 0;
        if (!has_issue) {
          Report(i, "todo-issue",
                 std::string(tag) +
                     " without an issue reference; use TODO(#123) so it is "
                     "trackable");
        }
        break;  // one finding per line is enough
      }
    }
  }

  std::string path_;
  FileScope scope_;
  SplitSource split_;
  std::vector<std::string> code_lines_;
  std::vector<std::string> comment_lines_;
  std::vector<std::vector<std::string>> allowed_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<std::string>& RuleIds() {
  static const std::vector<std::string> kRules = {
      "nondeterminism",  "no-raw-clock", "no-raw-socket",
      "no-naked-new",    "no-raw-io",    "no-direct-write",
      "header-guard",    "no-using-namespace", "no-catch-all",
      "todo-issue",
  };
  return kRules;
}

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& contents) {
  return Linter(path, contents).Run();
}

bool LintPaths(const std::vector<std::string>& roots,
               std::vector<Finding>* findings, std::string* error) {
  std::vector<std::string> files;
  if (!ListSourceFiles(roots, &files, error)) return false;
  for (const std::string& file : files) {
    std::string contents;
    if (!ReadFileToString(file, &contents, error)) return false;
    std::vector<Finding> f = LintContent(file, contents);
    findings->insert(findings->end(), f.begin(), f.end());
  }
  return true;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          out += c;
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  {\"file\": \"" << escape(findings[i].file)
        << "\", \"line\": " << findings[i].line << ", \"rule\": \""
        << escape(findings[i].rule) << "\", \"message\": \""
        << escape(findings[i].message) << "\"}";
  }
  if (!findings.empty()) out << "\n";
  out << "]\n";
  return out.str();
}

}  // namespace xfraud::lint
