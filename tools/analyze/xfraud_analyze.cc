// xfraud_analyze: whole-program static analysis — module layering DAG and
// include cycles, discarded Status/Result results, and unordered-container
// iteration (determinism taint).
//
// Usage:
//   xfraud_analyze [--config=layering.conf] [--baseline=FILE]
//                  [--write-baseline=FILE] [--json=report.json] [--quiet]
//                  [--list-rules] [paths...]
//
// With no paths, analyzes src/ tests/ bench/ examples/ tools/ relative to
// the current directory, and picks up tools/analyze/layering.conf and
// tools/analyze/analyze_baseline.txt when present. Exits 0 when clean, 1 on
// non-baselined findings, 2 on usage or I/O errors. Findings print as
// `file:line: rule-id message`. Suppress one site with
// `// xfraud-analyze: allow(rule-id)` on that line or the line above.
//
// The passes and their rationale are documented in DESIGN.md §14.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze_core.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string config_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string json_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : xfraud::analyze::RuleIds()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = arg.substr(9);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: xfraud_analyze [--config=layering.conf] "
                   "[--baseline=FILE] [--write-baseline=FILE] "
                   "[--json=report.json] [--quiet] [--list-rules] "
                   "[paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "xfraud_analyze: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      if (std::filesystem::is_directory(dir)) roots.push_back(dir);
    }
    if (roots.empty()) {
      std::cerr << "xfraud_analyze: no default roots found; run from the "
                   "repo root or pass paths\n";
      return 2;
    }
  }
  if (config_path.empty() &&
      std::filesystem::is_regular_file("tools/analyze/layering.conf")) {
    config_path = "tools/analyze/layering.conf";
  }
  if (baseline_path.empty() &&
      std::filesystem::is_regular_file("tools/analyze/analyze_baseline.txt")) {
    baseline_path = "tools/analyze/analyze_baseline.txt";
  }

  std::string error;
  xfraud::analyze::LayeringConfig config;
  if (!config_path.empty() &&
      !xfraud::analyze::LoadLayeringConfig(config_path, &config, &error)) {
    std::cerr << "xfraud_analyze: " << error << "\n";
    return 2;
  }

  std::vector<xfraud::analyze::Finding> findings;
  if (!xfraud::analyze::AnalyzePaths(roots, config, &findings, &error)) {
    std::cerr << "xfraud_analyze: " << error << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "xfraud_analyze: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    out << xfraud::analyze::FindingsToBaseline(findings);
  }

  std::vector<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!xfraud::lint::ReadFileToString(baseline_path, &text, &error)) {
      std::cerr << "xfraud_analyze: " << error << "\n";
      return 2;
    }
    baseline = xfraud::analyze::ParseBaseline(text);
  }
  std::vector<std::string> stale;
  findings = xfraud::analyze::ApplyBaseline(findings, baseline, &stale);

  if (!quiet) {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": " << f.rule << " "
                << f.message << "\n";
    }
    for (const std::string& key : stale) {
      std::cerr << "xfraud_analyze: stale baseline entry (already fixed — "
                   "prune it): "
                << key << "\n";
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "xfraud_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << xfraud::lint::FindingsToJson(findings);
  }
  if (!quiet) {
    std::cout << (findings.empty()
                      ? "xfraud_analyze: clean"
                      : "xfraud_analyze: " +
                            std::to_string(findings.size()) + " finding(s)")
              << "\n";
  }
  return findings.empty() ? 0 : 1;
}
