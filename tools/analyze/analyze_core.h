#ifndef XFRAUD_TOOLS_ANALYZE_ANALYZE_CORE_H_
#define XFRAUD_TOOLS_ANALYZE_ANALYZE_CORE_H_

#include <string>
#include <vector>

#include "lint_core.h"

// xfraud_analyze: whole-program passes that need to see every file at once,
// complementing xfraud_lint's per-file rules. Std-only like lint_core: the
// analyzer must build and run even when the library itself doesn't compile.
//
// Passes (rule ids):
//   layering         — an #include "xfraud/<module>/..." edge that is not
//                      strictly downward in the declared module DAG and not
//                      blessed in layering.conf.
//   include-cycle    — a strongly connected component in the module include
//                      graph, reported with the offending include chain.
//   discarded-status — a call to a Status/Result-returning function whose
//                      result is neither assigned, returned, checked, nor
//                      cast to (void).
//   unordered-iter   — iteration over an unordered_map/unordered_set in
//                      src/xfraud, where hash order can leak into results.
//   ingest-bypass    — a Put/Delete/Ingest on a KV store from a library
//                      module other than kv/stream/fault: direct store
//                      mutation outside the ingest tier side-steps epoch
//                      snapshots and crash recovery.
//
// Suppression mirrors lint: `// xfraud-analyze: allow(rule-id)` on the
// offending line or the line above, plus an optional checked-in baseline of
// `file:line: rule-id` lines for gradual adoption.

namespace xfraud::analyze {

using lint::Finding;

/// One blessed (exempt) layering edge: module `from` may include `to` even
/// though `to` is not strictly below it. Cycles are never blessable.
struct BlessedEdge {
  std::string from;
  std::string to;
  std::string reason;
};

/// Parsed layering.conf: lines of `allow <from> -> <to>  # reason`, with
/// `#` comments and blank lines ignored.
struct LayeringConfig {
  std::vector<BlessedEdge> blessed;

  bool IsBlessed(const std::string& from, const std::string& to) const;
};

bool ParseLayeringConfig(const std::string& text, LayeringConfig* config,
                         std::string* error);
bool LoadLayeringConfig(const std::string& path, LayeringConfig* config,
                        std::string* error);

/// Layer of a module in the declared DAG
///   common -> {obs, graph, nn, la} -> {kv, sample, data, baselines}
///          -> {core, fault} -> {train, explain, dist, serve, stream}
/// (0 = common, 4 = top). Returns -1 for a module the DAG does not know,
/// which pass 1 reports as a layering finding.
int ModuleLayer(const std::string& module);

/// All analyzer rule identifiers.
const std::vector<std::string>& RuleIds();

/// One file of the program under analysis. `path` is used both for scoping
/// (library passes key off a "src/xfraud/" component) and for findings.
struct SourceFile {
  std::string path;
  std::string contents;
};

/// Runs all passes over the whole program. Files are analyzed in path
/// order; findings come out grouped by pass, then by file and line, and are
/// deterministic for a given tree.
std::vector<Finding> AnalyzeTree(const std::vector<SourceFile>& files,
                                 const LayeringConfig& config);

/// Collects sources under `roots` (walk semantics of lint's
/// ListSourceFiles: *_fixtures/, build trees, and .git are skipped) and
/// runs AnalyzeTree. Returns false and sets `error` on I/O failure.
bool AnalyzePaths(const std::vector<std::string>& roots,
                  const LayeringConfig& config,
                  std::vector<Finding>* findings, std::string* error);

/// Baseline key for a finding: "file:line: rule-id".
std::string BaselineKey(const Finding& finding);

/// Parses a baseline file body: one BaselineKey per line, `#` comments and
/// blank lines ignored.
std::vector<std::string> ParseBaseline(const std::string& text);

/// Drops findings whose key appears in `baseline`. Baseline entries that
/// matched nothing are appended to `stale` (they point at fixed findings
/// and should be pruned); `stale` may be null.
std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const std::vector<std::string>& baseline,
                                   std::vector<std::string>* stale);

/// Serializes findings as baseline lines (for --write-baseline).
std::string FindingsToBaseline(const std::vector<Finding>& findings);

}  // namespace xfraud::analyze

#endif  // XFRAUD_TOOLS_ANALYZE_ANALYZE_CORE_H_
