#include "analyze_core.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace xfraud::analyze {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsWordStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

/// One file plus everything the passes need: scanner halves, per-line allow
/// directives, and its place in the module tree.
struct ScannedFile {
  const SourceFile* src = nullptr;
  lint::SplitSource split;
  std::vector<std::string> raw_lines;
  std::vector<std::vector<std::string>> allows;
  std::vector<size_t> line_starts;  // byte offset of each line start
  std::string module;               // "" unless under src/xfraud/<module>/
  bool in_library = false;          // under src/xfraud/
};

int LineOf(const ScannedFile& f, size_t offset) {
  auto it = std::upper_bound(f.line_starts.begin(), f.line_starts.end(),
                             offset);
  return static_cast<int>(it - f.line_starts.begin());  // 1-based
}

bool AllowedAt(const ScannedFile& f, int line1, const std::string& rule) {
  size_t line0 = static_cast<size_t>(line1 - 1);
  for (size_t l = line0 > 0 ? line0 - 1 : 0; l <= line0; ++l) {
    if (l >= f.allows.size()) break;
    for (const std::string& r : f.allows[l]) {
      if (r == rule) return true;
    }
  }
  return false;
}

ScannedFile ScanFile(const SourceFile& src) {
  ScannedFile f;
  f.src = &src;
  f.split = lint::SplitCodeComments(src.contents);
  f.raw_lines = lint::SplitLines(src.contents);
  f.allows = lint::ParseAllowDirectives(
      lint::SplitLines(f.split.comments), "xfraud-analyze:");
  f.line_starts.push_back(0);
  for (size_t i = 0; i < src.contents.size(); ++i) {
    if (src.contents[i] == '\n') f.line_starts.push_back(i + 1);
  }
  std::string path = src.path;
  std::replace(path.begin(), path.end(), '\\', '/');
  size_t pos = path.find("src/xfraud/");
  if (pos != std::string::npos) {
    f.in_library = true;
    std::string rest = path.substr(pos + 11);
    size_t slash = rest.find('/');
    // Files directly in src/xfraud/ (the umbrella header) belong to no
    // module and are exempt from layering: aggregating everything is their
    // job.
    if (slash != std::string::npos) f.module = rest.substr(0, slash);
  }
  return f;
}

// --------------------------------------------------------------------------
// Pass 1: include graph — layering and cycles.
// --------------------------------------------------------------------------

struct IncludeEdge {
  std::string from;
  std::string to;
  const ScannedFile* file;
  int line;
  std::string target;  // the quoted include path
};

/// Pulls `#include "xfraud/<module>/..."` edges out of one module file.
/// The include path itself is a string literal (blanked in the code half),
/// so the directive is located in code and the target read from the raw
/// line at the same offsets.
void CollectEdges(const ScannedFile& f, std::vector<IncludeEdge>* edges) {
  if (f.module.empty()) return;
  std::vector<std::string> code_lines = lint::SplitLines(f.split.code);
  for (size_t i = 0; i < code_lines.size(); ++i) {
    if (code_lines[i].find("#include") == std::string::npos) continue;
    const std::string& raw = f.raw_lines[i];
    size_t open = raw.find('"');
    if (open == std::string::npos) continue;
    size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    std::string target = raw.substr(open + 1, close - open - 1);
    if (target.rfind("xfraud/", 0) != 0) continue;
    size_t slash = target.find('/', 7);
    if (slash == std::string::npos) continue;  // the umbrella header
    std::string to = target.substr(7, slash - 7);
    if (to == f.module) continue;
    edges->push_back({f.module, to, &f, static_cast<int>(i) + 1, target});
  }
}

void CheckLayering(const std::vector<IncludeEdge>& edges,
                   const LayeringConfig& config,
                   std::vector<Finding>* findings) {
  for (const IncludeEdge& e : edges) {
    int lf = ModuleLayer(e.from);
    int lt = ModuleLayer(e.to);
    std::string message;
    if (lf < 0) {
      message = "file belongs to module '" + e.from +
                "', which the declared module DAG does not know; add it to "
                "a layer in tools/analyze/analyze_core.cc";
    } else if (lt < 0) {
      message = "include \"" + e.target + "\" targets module '" + e.to +
                "', which the declared module DAG does not know";
    } else if (lt < lf) {
      continue;  // strictly downward: always fine
    } else if (config.IsBlessed(e.from, e.to)) {
      continue;
    } else {
      message = "include \"" + e.target + "\" makes module '" + e.from +
                "' (layer " + std::to_string(lf) + ") depend on '" + e.to +
                "' (layer " + std::to_string(lt) +
                "); only strictly lower layers may be included — invert "
                "the dependency or bless the edge in layering.conf "
                "(allow " + e.from + " -> " + e.to + ")";
    }
    if (AllowedAt(*e.file, e.line, "layering")) continue;
    findings->push_back({e.file->src->path, e.line, "layering", message});
  }
}

/// Tarjan SCC over the (tiny) module graph; every SCC with more than one
/// module is a cycle, reported once with the offending include chain.
/// Blessed edges still participate: a blessing exempts a layer rank check,
/// never a cycle.
class CycleFinder {
 public:
  explicit CycleFinder(const std::vector<IncludeEdge>& edges) {
    for (const IncludeEdge& e : edges) {
      adj_[e.from].emplace(e.to, &e);  // keeps the first (lowest-path) edge
      if (adj_.count(e.to) == 0) adj_[e.to] = {};
    }
  }

  void Report(std::vector<Finding>* findings) {
    for (const auto& [node, unused] : adj_) {
      if (index_.count(node) == 0) Strongconnect(node);
    }
    for (const std::vector<std::string>& scc : sccs_) {
      if (scc.size() < 2) continue;
      ReportCycle(scc, findings);
    }
  }

 private:
  void Strongconnect(const std::string& v) {
    index_[v] = low_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_.insert(v);
    for (const auto& [w, edge] : adj_[v]) {
      if (index_.count(w) == 0) {
        Strongconnect(w);
        low_[v] = std::min(low_[v], low_[w]);
      } else if (on_stack_.count(w) != 0) {
        low_[v] = std::min(low_[v], index_[w]);
      }
    }
    if (low_[v] == index_[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      std::sort(scc.begin(), scc.end());
      sccs_.push_back(std::move(scc));
    }
  }

  /// Walks edges inside the SCC from its smallest module until the walk
  /// closes, producing `a -> b (file:line) -> ... -> a (file:line)` where
  /// each location is the include creating the next hop.
  void ReportCycle(const std::vector<std::string>& scc,
                   std::vector<Finding>* findings) {
    std::set<std::string> members(scc.begin(), scc.end());
    std::vector<const IncludeEdge*> chain;
    std::set<std::string> visited;
    std::string at = scc.front();
    while (visited.insert(at).second) {
      const IncludeEdge* next = nullptr;
      for (const auto& [w, edge] : adj_[at]) {
        if (members.count(w) != 0) {
          next = edge;
          break;
        }
      }
      if (next == nullptr) return;  // defensive: SCC must have an out-edge
      chain.push_back(next);
      at = next->to;
    }
    // Drop the lead-in: keep only the chain from the first repeated module.
    size_t start = 0;
    while (start < chain.size() && chain[start]->from != at) ++start;
    std::string message = "module include cycle: " + at;
    for (size_t i = start; i < chain.size(); ++i) {
      message += " -> " + chain[i]->to + " (" + chain[i]->file->src->path +
                 ":" + std::to_string(chain[i]->line) + ")";
    }
    const IncludeEdge* anchor = chain[start];
    findings->push_back({anchor->file->src->path, anchor->line,
                         "include-cycle", message});
  }

  std::map<std::string, std::map<std::string, const IncludeEdge*>> adj_;
  std::map<std::string, int> index_;
  std::map<std::string, int> low_;
  int next_index_ = 0;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> sccs_;
};

// --------------------------------------------------------------------------
// Pass 2: discarded Status/Result results.
// --------------------------------------------------------------------------

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
  return i;
}

size_t SkipWsBack(const std::string& s, size_t i) {
  while (i > 0 && (s[i - 1] == ' ' || s[i - 1] == '\t' || s[i - 1] == '\n' ||
                   s[i - 1] == '\r')) {
    --i;
  }
  return i;
}

/// Balances from s[open] (a '<' or '(') to its closing bracket; returns the
/// index one past the close, or npos when unbalanced.
size_t BalanceFrom(const std::string& s, size_t open, char oc, char cc) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == oc) ++depth;
    if (s[i] == cc) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Parses `id` or `id::id::id` starting at i; returns one past the end and
/// stores the LAST component (the unqualified name), or npos when i does
/// not start an identifier.
size_t ParseQualifiedId(const std::string& s, size_t i, std::string* last) {
  if (i >= s.size() || !IsWordStart(s[i])) return std::string::npos;
  while (true) {
    size_t e = i;
    while (e < s.size() && IsWordChar(s[e])) ++e;
    *last = s.substr(i, e - i);
    if (e + 1 < s.size() && s[e] == ':' && s[e + 1] == ':' &&
        e + 2 < s.size() && IsWordStart(s[e + 2])) {
      i = e + 2;
      continue;
    }
    return e;
  }
}

/// Walks the code half and hands every identifier token to `fn(begin, end)`.
template <typename Fn>
void ForEachIdentifier(const std::string& code, Fn fn) {
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsWordStart(code[i]) || (i > 0 && IsWordChar(code[i - 1]))) continue;
    size_t e = i;
    while (e < code.size() && IsWordChar(code[e])) ++e;
    fn(i, e);
    i = e - 1;
  }
}

/// Textual index of functions declared to return Status or Result<...>.
/// Whole-program: built over every scanned file so headers inform call
/// sites anywhere. Names that are ALSO declared with a conflicting return
/// type somewhere are excluded from checking rather than guessed at.
struct StatusIndex {
  std::set<std::string> status_fns;
  std::set<std::string> ambiguous;
};

void IndexStatusFunctions(const ScannedFile& f, StatusIndex* index) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    size_t j = SkipWs(code, e);
    if (tok == "Status") {
      // `Status Name(` / `Status Class::Name(` — a declaration. `Status::X`
      // factories and `Status s = ...` fall out of the shape.
      std::string name;
      size_t after = ParseQualifiedId(code, j, &name);
      if (after == std::string::npos) return;
      after = SkipWs(code, after);
      if (after < code.size() && code[after] == '(') {
        index->status_fns.insert(name);
      }
    } else if (tok == "Result") {
      if (j >= code.size() || code[j] != '<') return;
      size_t close = BalanceFrom(code, j, '<', '>');
      if (close == std::string::npos) return;
      std::string name;
      size_t after = ParseQualifiedId(code, SkipWs(code, close), &name);
      if (after == std::string::npos) return;
      after = SkipWs(code, after);
      if (after < code.size() && code[after] == '(') {
        index->status_fns.insert(name);
      }
    }
  });
}

/// Statement context of a call to an indexed function, derived by walking
/// backwards from the callee name over its receiver chain (`store->`,
/// `it->second.`) to the first interesting character.
enum class CallContext { kUsed, kDeclaration, kConflict, kStatement };

bool IsReceiverChar(char c) {
  return IsWordChar(c) || c == '.' || c == '-' || c == '>' || c == ':' ||
         c == '[' || c == ']';
}

CallContext ClassifyCallSite(const std::string& code, size_t name_begin) {
  size_t b = name_begin;
  while (b > 0 && IsReceiverChar(code[b - 1])) --b;
  size_t a = SkipWsBack(code, b);
  if (a == 0) return CallContext::kStatement;
  char c = code[a - 1];
  if (IsWordChar(c)) {
    size_t tb = a - 1;
    while (tb > 0 && (IsWordChar(code[tb - 1]) || code[tb - 1] == ':')) --tb;
    std::string tok = code.substr(tb, a - tb);
    if (tok.size() >= 6 && tok.compare(tok.size() - 6, 6, "Status") == 0) {
      return CallContext::kDeclaration;
    }
    if (tok == "return" || tok == "throw" || tok == "co_return" ||
        tok == "co_yield" || tok == "new" || tok == "case" || tok == "goto") {
      return CallContext::kUsed;
    }
    if (tok == "else" || tok == "do") return CallContext::kStatement;
    // Another type token in front: a declaration returning something that
    // is not Status — this name cannot be checked reliably.
    return CallContext::kConflict;
  }
  if (c == '>') return CallContext::kUsed;  // `Result<T> f(` or comparison
  if (c == '&' || c == '*') {
    // `Type& f(` / `Type* f(` is a conflicting declaration; `x && f()` and
    // `&f` are uses.
    bool after_type = a >= 2 && (IsWordChar(code[a - 2]) || code[a - 2] == '>');
    bool doubled = a >= 2 && code[a - 2] == c;
    if (after_type && !doubled) return CallContext::kConflict;
    return CallContext::kUsed;
  }
  if (c == ';' || c == '{' || c == '}') return CallContext::kStatement;
  if (c == ')') {
    // Either the sanctioned `(void)f(...)` discard, or a control clause
    // like `if (cond) f(...);` whose body is a bare statement.
    size_t open = code.rfind('(', a - 2);
    int depth = 1;
    size_t i = a - 1;
    while (i > 0) {
      --i;
      if (code[i] == ')') ++depth;
      if (code[i] == '(' && --depth == 0) break;
    }
    open = i;
    if (Trim(code.substr(open + 1, (a - 2) - open)) == "void") {
      return CallContext::kUsed;
    }
    size_t kb = SkipWsBack(code, open);
    size_t kt = kb;
    while (kt > 0 && IsWordChar(code[kt - 1])) --kt;
    std::string kw = code.substr(kt, kb - kt);
    if (kw == "if" || kw == "while" || kw == "for" || kw == "switch") {
      return CallContext::kStatement;
    }
    return CallContext::kUsed;
  }
  return CallContext::kUsed;  // '=', '(', ',', '!', '?', operators...
}

/// First pass over call sites only records conflicting declarations, so
/// that excludes apply no matter the file order.
void CollectConflicts(const ScannedFile& f, StatusIndex* index) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    if (index->status_fns.count(tok) == 0) return;
    size_t j = SkipWs(code, e);
    if (j >= code.size() || code[j] != '(') return;
    if (ClassifyCallSite(code, b) == CallContext::kConflict) {
      index->ambiguous.insert(tok);
    }
  });
}

void CheckDiscardedStatus(const ScannedFile& f, const StatusIndex& index,
                          std::vector<Finding>* findings) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    if (index.status_fns.count(tok) == 0 || index.ambiguous.count(tok) != 0) {
      return;
    }
    size_t j = SkipWs(code, e);
    if (j >= code.size() || code[j] != '(') return;
    if (ClassifyCallSite(code, b) != CallContext::kStatement) return;
    size_t close = BalanceFrom(code, j, '(', ')');
    if (close == std::string::npos) return;
    size_t k = SkipWs(code, close);
    if (k >= code.size() || code[k] != ';') return;  // e.g. `.ok()` chain
    int line = LineOf(f, b);
    if (AllowedAt(f, line, "discarded-status")) return;
    findings->push_back(
        {f.src->path, line, "discarded-status",
         "result of Status/Result-returning '" + tok +
             "' is discarded; check it, return it, or cast to (void) with "
             "a comment explaining why ignoring is safe"});
  });
}

// --------------------------------------------------------------------------
// Pass 3: determinism taint — unordered container iteration.
// --------------------------------------------------------------------------

/// Identifiers declared as unordered containers (`taint`) and as ordered
/// containers OF unordered containers (`element_taint`, e.g.
/// vector<unordered_map<...>> whose operator[] yields a tainted value).
/// Name-keyed and whole-program: a header member declaration informs the
/// .cc that iterates it.
struct TaintIndex {
  std::set<std::string> taint;
  std::set<std::string> element_taint;
};

void IndexUnorderedDecls(const ScannedFile& f, TaintIndex* index) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    bool unordered = tok == "unordered_map" || tok == "unordered_set" ||
                     tok == "unordered_multimap" ||
                     tok == "unordered_multiset";
    bool wrapper = tok == "vector" || tok == "array" || tok == "deque";
    if (!unordered && !wrapper) return;
    size_t j = SkipWs(code, e);
    if (j >= code.size() || code[j] != '<') return;
    size_t close = BalanceFrom(code, j, '<', '>');
    if (close == std::string::npos) return;
    if (wrapper &&
        code.substr(j, close - j).find("unordered_") == std::string::npos) {
      return;
    }
    size_t k = SkipWs(code, close);
    while (k < code.size() && (code[k] == '&' || code[k] == '*')) {
      k = SkipWs(code, k + 1);
    }
    std::string name;
    size_t after = ParseQualifiedId(code, k, &name);
    if (after == std::string::npos) return;
    (unordered ? index->taint : index->element_taint).insert(name);
  });
}

/// `auto& x = y[i];` where y holds unordered elements, and `auto& x = y;`
/// where y is itself tainted, both taint x.
void PropagateAliases(const ScannedFile& f, TaintIndex* index) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    if (code.substr(b, e - b) != "auto") return;
    size_t j = SkipWs(code, e);
    if (j < code.size() && (code[j] == '&' || code[j] == '*')) {
      j = SkipWs(code, j + 1);
    }
    std::string alias;
    size_t after = ParseQualifiedId(code, j, &alias);
    if (after == std::string::npos) return;
    after = SkipWs(code, after);
    if (after >= code.size() || code[after] != '=') return;
    std::string base;
    size_t base_end = ParseQualifiedId(code, SkipWs(code, after + 1), &base);
    if (base_end == std::string::npos) return;
    if (base_end < code.size() && code[base_end] == '[' &&
        index->element_taint.count(base) != 0) {
      index->taint.insert(alias);
    } else if (base_end < code.size() && code[base_end] == ';' &&
               index->taint.count(base) != 0) {
      index->taint.insert(alias);
    }
  });
}

/// The last `.`/`->`/`::`-separated component of an expression like
/// `this->budget` or `sub.local_of` — the name the taint index knows.
std::string LastComponent(const std::string& expr) {
  size_t b = expr.size();
  while (b > 0 && IsWordChar(expr[b - 1])) --b;
  return expr.substr(b);
}

void ReportIteration(const ScannedFile& f, int line, const std::string& name,
                     const std::string& how,
                     std::vector<Finding>* findings) {
  if (AllowedAt(f, line, "unordered-iter")) return;
  findings->push_back(
      {f.src->path, line, "unordered-iter",
       how + " '" + name +
           "' iterates in hash order, which varies across standard "
           "libraries and can leak into results; iterate a sorted snapshot, "
           "or suppress with // xfraud-analyze: allow(unordered-iter) if "
           "the order provably never reaches an output"});
}

void CheckUnorderedIteration(const ScannedFile& f, const TaintIndex& index,
                             std::vector<Finding>* findings) {
  const std::string& code = f.split.code;
  std::set<std::pair<int, std::string>> seen;  // dedupe (line, name)
  auto report = [&](size_t offset, const std::string& name,
                    const std::string& how) {
    int line = LineOf(f, offset);
    if (!seen.insert({line, name}).second) return;
    ReportIteration(f, line, name, how, findings);
  };
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    if (tok == "for") {
      size_t j = SkipWs(code, e);
      if (j >= code.size() || code[j] != '(') return;
      size_t close = BalanceFrom(code, j, '(', ')');
      if (close == std::string::npos) return;
      std::string head = code.substr(j + 1, close - j - 2);
      size_t colon = std::string::npos;
      int depth = 0;
      for (size_t i = 0; i < head.size(); ++i) {
        if (head[i] == '(' || head[i] == '[') ++depth;
        if (head[i] == ')' || head[i] == ']') --depth;
        if (head[i] == ':' && depth == 0) {
          if (i + 1 < head.size() && head[i + 1] == ':') {
            ++i;
            continue;
          }
          if (i > 0 && head[i - 1] == ':') continue;
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) return;  // classic for loop
      std::string expr = Trim(head.substr(colon + 1));
      if (expr.empty()) return;
      if (expr.back() == ')') {
        // Range is a call: tainted when the CALLEE is a function declared
        // to return an unordered container.
        size_t open = expr.rfind('(');
        if (open == std::string::npos) return;
        std::string callee = LastComponent(Trim(expr.substr(0, open)));
        if (index.taint.count(callee) != 0) {
          report(b, callee, "range-for over unordered container from");
        }
        return;
      }
      if (expr.back() == ']') {
        size_t open = expr.rfind('[');
        if (open == std::string::npos) return;
        std::string base = LastComponent(Trim(expr.substr(0, open)));
        if (index.element_taint.count(base) != 0) {
          report(b, base + "[...]", "range-for over unordered element of");
        }
        return;
      }
      std::string name = LastComponent(expr);
      if (index.taint.count(name) != 0) {
        report(b, name, "range-for over unordered container");
      }
    } else if (tok == "begin" || tok == "cbegin") {
      // Iterator-pair traversal: `c.begin()` on a tainted container, e.g.
      // snapshotting `vec(c.begin(), c.end())` or a manual iterator loop.
      if (b < 1 || (code[b - 1] != '.' &&
                    !(b >= 2 && code[b - 2] == '-' && code[b - 1] == '>'))) {
        return;
      }
      size_t j = SkipWs(code, e);
      if (j >= code.size() || code[j] != '(') return;
      size_t rb = b - (code[b - 1] == '.' ? 1 : 2);
      size_t re = rb;
      while (re > 0 && IsWordChar(code[re - 1])) --re;
      std::string recv = code.substr(re, rb - re);
      if (!recv.empty() && index.taint.count(recv) != 0) {
        report(b, recv, "iterator traversal of unordered container");
      }
    }
  });
}

// --------------------------------------------------------------------------
// Pass 4: ingest bypass — direct store mutation outside the ingest tier.
// --------------------------------------------------------------------------

/// Identifiers declared with a KV-store type: the "KvStore"-suffixed
/// classes and FeatureStore, through pointer/reference declarators and
/// smart-pointer/container wrappers (`std::unique_ptr<LogKvStore> cell_;`).
/// Name-keyed and whole-program like the taint index: a header member
/// declaration informs call sites in any .cc.
struct IngestIndex {
  std::set<std::string> stores;
};

bool IsStoreTypeName(const std::string& tok) {
  if (tok == "FeatureStore") return true;
  return tok.size() >= 7 && tok.compare(tok.size() - 7, 7, "KvStore") == 0;
}

void IndexStoreDecls(const ScannedFile& f, IngestIndex* index) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    size_t j = SkipWs(code, e);
    bool wrapper = tok == "unique_ptr" || tok == "shared_ptr" ||
                   tok == "vector" || tok == "array" || tok == "deque";
    if (wrapper) {
      if (j >= code.size() || code[j] != '<') return;
      size_t close = BalanceFrom(code, j, '<', '>');
      if (close == std::string::npos) return;
      std::string inner = code.substr(j, close - j);
      if (inner.find("KvStore") == std::string::npos &&
          inner.find("FeatureStore") == std::string::npos) {
        return;
      }
      j = SkipWs(code, close);
    } else if (!IsStoreTypeName(tok)) {
      return;
    }
    bool indirect = false;
    while (j < code.size() && (code[j] == '&' || code[j] == '*')) {
      indirect = true;
      j = SkipWs(code, j + 1);
    }
    std::string name;
    size_t after = ParseQualifiedId(code, j, &name);
    if (after == std::string::npos) return;
    after = SkipWs(code, after);
    // `KvStore* serving()` declares a function returning a store, not a
    // store variable (calls through accessors are out of scope); a value
    // type followed by '(' is ctor-argument initialization and counts.
    if (indirect && after < code.size() && code[after] == '(') return;
    index->stores.insert(name);
  });
}

/// Flags `x.Put(` / `x->Delete(` / `x.Ingest(` where x was declared as a
/// store anywhere in the program. Only the kv/stream/fault modules (the
/// schema owners and the fault wrapper) may mutate stores directly;
/// everywhere else a raw write silently side-steps the epoch/snapshot
/// machinery and crash recovery of the ingest tier.
void CheckIngestBypass(const ScannedFile& f, const IngestIndex& index,
                       std::vector<Finding>* findings) {
  const std::string& code = f.split.code;
  ForEachIdentifier(code, [&](size_t b, size_t e) {
    std::string tok = code.substr(b, e - b);
    if (tok != "Put" && tok != "Delete" && tok != "Ingest") return;
    size_t j = SkipWs(code, e);
    if (j >= code.size() || code[j] != '(') return;
    bool dot = b >= 1 && code[b - 1] == '.';
    bool arrow = b >= 2 && code[b - 2] == '-' && code[b - 1] == '>';
    if (!dot && !arrow) return;
    // Walk back over the receiver, balancing over subscripts so
    // `cells_[i]->Put(...)` resolves to `cells_`.
    size_t rb = b - (dot ? 1 : 2);
    size_t re = rb;
    while (re > 0) {
      char c = code[re - 1];
      if (IsWordChar(c)) {
        --re;
        continue;
      }
      if (c == ']') {
        int depth = 0;
        size_t i = re;
        while (i > 0) {
          --i;
          if (code[i] == ']') ++depth;
          if (code[i] == '[' && --depth == 0) break;
        }
        if (depth != 0) return;  // unbalanced: not a plain receiver
        re = i;
        continue;
      }
      break;
    }
    size_t we = re;
    while (we < rb && IsWordChar(code[we])) ++we;
    std::string recv = code.substr(re, we - re);
    if (recv.empty() || index.stores.count(recv) == 0) return;
    int line = LineOf(f, b);
    if (AllowedAt(f, line, "ingest-bypass")) return;
    findings->push_back(
        {f.src->path, line, "ingest-bypass",
         "'" + recv + "." + tok +
             "' mutates a KV store directly from module '" + f.module +
             "'; route writes through the ingest tier "
             "(stream::GraphIngestor, or kv::FeatureStore::Ingest inside "
             "kv/stream) so epoch snapshots and crash recovery observe "
             "them — or suppress with // xfraud-analyze: "
             "allow(ingest-bypass) if this call IS a sanctioned bulk-load "
             "path"});
  });
}

}  // namespace

// --------------------------------------------------------------------------
// Public API.
// --------------------------------------------------------------------------

bool LayeringConfig::IsBlessed(const std::string& from,
                               const std::string& to) const {
  for (const BlessedEdge& edge : blessed) {
    if (edge.from == from && edge.to == to) return true;
  }
  return false;
}

bool ParseLayeringConfig(const std::string& text, LayeringConfig* config,
                         std::string* error) {
  std::vector<std::string> lines = lint::SplitLines(text);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    std::string reason;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      reason = Trim(line.substr(hash + 1));
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string kw;
    std::string from;
    std::string arrow;
    std::string to;
    std::string extra;
    in >> kw >> from >> arrow >> to;
    if (kw != "allow" || arrow != "->" || from.empty() || to.empty() ||
        (in >> extra)) {
      *error = "layering.conf line " + std::to_string(i + 1) +
               ": expected `allow <from> -> <to>  # reason`, got: " + line;
      return false;
    }
    config->blessed.push_back({from, to, reason});
  }
  return true;
}

bool LoadLayeringConfig(const std::string& path, LayeringConfig* config,
                        std::string* error) {
  std::string text;
  if (!lint::ReadFileToString(path, &text, error)) return false;
  return ParseLayeringConfig(text, config, error);
}

int ModuleLayer(const std::string& module) {
  static const std::map<std::string, int> kLayers = {
      {"common", 0},
      {"obs", 1},    {"graph", 1},     {"nn", 1},   {"la", 1},
      {"kv", 2},     {"sample", 2},    {"data", 2}, {"baselines", 2},
      {"core", 3},   {"fault", 3},
      {"train", 4},  {"explain", 4},   {"dist", 4}, {"serve", 4},
      {"stream", 4},
  };
  auto it = kLayers.find(module);
  return it == kLayers.end() ? -1 : it->second;
}

const std::vector<std::string>& RuleIds() {
  static const std::vector<std::string> kRules = {
      "layering", "include-cycle", "discarded-status", "unordered-iter",
      "ingest-bypass"};
  return kRules;
}

std::vector<Finding> AnalyzeTree(const std::vector<SourceFile>& files,
                                 const LayeringConfig& config) {
  std::vector<const SourceFile*> ordered;
  ordered.reserve(files.size());
  for (const SourceFile& f : files) ordered.push_back(&f);
  std::sort(ordered.begin(), ordered.end(),
            [](const SourceFile* a, const SourceFile* b) {
              return a->path < b->path;
            });
  std::vector<ScannedFile> scanned;
  scanned.reserve(ordered.size());
  for (const SourceFile* f : ordered) scanned.push_back(ScanFile(*f));

  std::vector<Finding> findings;

  // Pass 1: include graph.
  std::vector<IncludeEdge> edges;
  for (const ScannedFile& f : scanned) CollectEdges(f, &edges);
  CheckLayering(edges, config, &findings);
  CycleFinder(edges).Report(&findings);

  // Pass 2: discarded Status. Indexed over every file; checked in library
  // and tools code (tests assert through gtest and may ignore freely; the
  // class-level [[nodiscard]] makes the compiler cover them anyway).
  StatusIndex status_index;
  for (const ScannedFile& f : scanned) {
    IndexStatusFunctions(f, &status_index);
  }
  for (const ScannedFile& f : scanned) CollectConflicts(f, &status_index);
  for (const ScannedFile& f : scanned) {
    std::string path = f.src->path;
    bool in_tools = path.find("tools/") != std::string::npos ||
                    path.rfind("tools", 0) == 0;
    if (!f.in_library && !in_tools) continue;
    CheckDiscardedStatus(f, status_index, &findings);
  }

  // Pass 3: determinism taint, library-only (tools/tests/bench may iterate
  // however they like; they are not part of reproducible pipelines).
  TaintIndex taint_index;
  for (const ScannedFile& f : scanned) IndexUnorderedDecls(f, &taint_index);
  for (const ScannedFile& f : scanned) PropagateAliases(f, &taint_index);
  for (const ScannedFile& f : scanned) {
    if (!f.in_library) continue;
    CheckUnorderedIteration(f, taint_index, &findings);
  }

  // Pass 4: ingest bypass, library-only minus the store owners. kv and
  // stream define the serving schema and the ingest tier, fault wraps the
  // raw write path — everywhere else store mutation must go through them.
  IngestIndex ingest_index;
  for (const ScannedFile& f : scanned) IndexStoreDecls(f, &ingest_index);
  for (const ScannedFile& f : scanned) {
    if (!f.in_library) continue;
    if (f.module == "kv" || f.module == "stream" || f.module == "fault") {
      continue;
    }
    CheckIngestBypass(f, ingest_index, &findings);
  }

  // Deterministic order and at most one finding per site and rule.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule;
                             }),
                 findings.end());
  return findings;
}

bool AnalyzePaths(const std::vector<std::string>& roots,
                  const LayeringConfig& config,
                  std::vector<Finding>* findings, std::string* error) {
  std::vector<std::string> paths;
  if (!lint::ListSourceFiles(roots, &paths, error)) return false;
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string contents;
    if (!lint::ReadFileToString(path, &contents, error)) return false;
    files.push_back({path, std::move(contents)});
  }
  std::vector<Finding> found = AnalyzeTree(files, config);
  findings->insert(findings->end(), found.begin(), found.end());
  return true;
}

std::string BaselineKey(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule;
}

std::vector<std::string> ParseBaseline(const std::string& text) {
  std::vector<std::string> keys;
  for (const std::string& raw : lint::SplitLines(text)) {
    std::string line = raw;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (!line.empty()) keys.push_back(line);
  }
  return keys;
}

std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const std::vector<std::string>& baseline,
                                   std::vector<std::string>* stale) {
  std::set<std::string> keys(baseline.begin(), baseline.end());
  std::set<std::string> matched;
  std::vector<Finding> remaining;
  for (const Finding& f : findings) {
    std::string key = BaselineKey(f);
    if (keys.count(key) != 0) {
      matched.insert(key);
    } else {
      remaining.push_back(f);
    }
  }
  if (stale != nullptr) {
    for (const std::string& key : keys) {
      if (matched.count(key) == 0) stale->push_back(key);
    }
  }
  return remaining;
}

std::string FindingsToBaseline(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += BaselineKey(f);
    out += "\n";
  }
  return out;
}

}  // namespace xfraud::analyze
