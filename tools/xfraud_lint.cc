// xfraud_lint: project-specific lint rules the compiler can't enforce.
//
// Usage:
//   xfraud_lint [--json=report.json] [--quiet] [--list-rules] [paths...]
//
// With no paths, lints src/ tests/ bench/ examples/ tools/ relative to the
// current directory. Exits 0 when clean, 1 on findings, 2 on usage or I/O
// errors. Findings print as `file:line: rule-id message` (editor-clickable);
// `--json` additionally writes a machine-readable report. Suppress a rule at
// one site with `// xfraud-lint: allow(rule-id)` on that line or the line
// above.
//
// The rules and their rationale are documented in DESIGN.md §9.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint_core.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : xfraud::lint::RuleIds()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: xfraud_lint [--json=report.json] [--quiet] "
                   "[--list-rules] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "xfraud_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      if (std::filesystem::is_directory(dir)) roots.push_back(dir);
    }
    if (roots.empty()) {
      std::cerr << "xfraud_lint: no default roots found; run from the repo "
                   "root or pass paths\n";
      return 2;
    }
  }

  std::vector<xfraud::lint::Finding> findings;
  std::string error;
  if (!xfraud::lint::LintPaths(roots, &findings, &error)) {
    std::cerr << "xfraud_lint: " << error << "\n";
    return 2;
  }

  if (!quiet) {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": " << f.rule << " "
                << f.message << "\n";
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "xfraud_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << xfraud::lint::FindingsToJson(findings);
  }
  if (!quiet) {
    std::cout << (findings.empty() ? "xfraud_lint: clean"
                                   : "xfraud_lint: " +
                                         std::to_string(findings.size()) +
                                         " finding(s)")
              << "\n";
  }
  return findings.empty() ? 0 : 1;
}
