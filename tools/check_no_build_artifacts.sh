#!/usr/bin/env bash
# Fails if any build-tree artifact is tracked by git. Guards against the
# class of mistake that once left 764 build/ objects in the index: a tracked
# build tree bloats clones and makes every rebuild show up as a dirty diff.
set -euo pipefail

cd "$(dirname "$0")/.."

tracked=$(git ls-files | grep -E '^build' || true)
if [[ -n "${tracked}" ]]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "${tracked}" | head -20 >&2
  count=$(echo "${tracked}" | wc -l)
  echo "(${count} files total; run: git rm -r --cached build*/)" >&2
  exit 1
fi
echo "ok: no build artifacts tracked"
