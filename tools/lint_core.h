#ifndef XFRAUD_TOOLS_LINT_CORE_H_
#define XFRAUD_TOOLS_LINT_CORE_H_

#include <string>
#include <vector>

namespace xfraud::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;
  int line = 1;
  std::string rule;
  std::string message;
};

/// All rule identifiers, for `--list-rules` and directive validation.
const std::vector<std::string>& RuleIds();

/// Lints one file given its contents. `path` picks which rules apply
/// (library-only rules fire under src/xfraud, header rules on *.h) and is
/// echoed into findings. Suppression: a `// xfraud-lint: allow(rule-id)`
/// comment on the offending line or the line above silences that rule there.
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& contents);

/// Recursively lints *.h/*.cc/*.hpp/*.cpp under each root (a root may also
/// be a single file). Build trees, .git, and lint_fixtures/ are skipped
/// during the walk unless the root itself points into them. Returns false
/// and sets `error` on I/O failure.
bool LintPaths(const std::vector<std::string>& roots,
               std::vector<Finding>* findings, std::string* error);

/// JSON array of findings: [{"file":...,"line":N,"rule":...,"message":...}].
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace xfraud::lint

#endif  // XFRAUD_TOOLS_LINT_CORE_H_
