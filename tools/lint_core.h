#ifndef XFRAUD_TOOLS_LINT_CORE_H_
#define XFRAUD_TOOLS_LINT_CORE_H_

#include <string>
#include <vector>

namespace xfraud::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;
  int line = 1;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Scanner layer, shared by xfraud_lint (per-file rules) and xfraud_analyze
// (whole-program passes). Std-only by design: the tooling must build and run
// even when the library itself doesn't compile.
// ---------------------------------------------------------------------------

/// Source split into (code, comments): both the same length as the input
/// with the other half (plus string/char literal contents) blanked to
/// spaces, so byte offsets and line numbers stay aligned with the original
/// file. Understands //, /*...*/, "...", '...', and raw string literals
/// including custom delimiters and encoding prefixes (R"x(...)x", u8R, LR,
/// uR, UR) — their contents never leak into `code`.
struct SplitSource {
  std::string code;      // comments + literal contents blanked
  std::string comments;  // everything except comment text blanked
};

SplitSource SplitCodeComments(const std::string& src);

/// Splits on '\n'; a trailing newline does not produce an extra empty line.
std::vector<std::string> SplitLines(const std::string& text);

/// True when `line` contains `word` as a whole identifier; if
/// `requires_call`, the next non-space character must be '('.
bool HasWord(const std::string& line, const std::string& word,
             bool requires_call);

/// Parses `<tag> allow(rule-a, rule-b)` directives out of comment lines
/// (tag is e.g. "xfraud-lint:" or "xfraud-analyze:"). The result has one
/// entry per line; entry i holds the rules suppressed on line i AND the
/// line below (0-based lines).
std::vector<std::vector<std::string>> ParseAllowDirectives(
    const std::vector<std::string>& comment_lines, const std::string& tag);

/// Recursively collects *.h/*.cc/*.hpp/*.cpp under each root (a root may
/// also be a single file), sorted. Build trees, .git, and *_fixtures/ dirs
/// are skipped during the walk unless the root itself points into them.
/// Returns false and sets `error` on I/O failure.
bool ListSourceFiles(const std::vector<std::string>& roots,
                     std::vector<std::string>* files, std::string* error);

/// Reads a file wholesale; false + `error` on failure.
bool ReadFileToString(const std::string& path, std::string* contents,
                      std::string* error);

// ---------------------------------------------------------------------------
// Lint rules.
// ---------------------------------------------------------------------------

/// All rule identifiers, for `--list-rules` and directive validation.
const std::vector<std::string>& RuleIds();

/// Lints one file given its contents. `path` picks which rules apply
/// (library-only rules fire under src/xfraud, header rules on *.h) and is
/// echoed into findings. Suppression: a `// xfraud-lint: allow(rule-id)`
/// comment on the offending line or the line above silences that rule there.
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& contents);

/// Recursively lints *.h/*.cc/*.hpp/*.cpp under each root (walk semantics of
/// ListSourceFiles). Returns false and sets `error` on I/O failure.
bool LintPaths(const std::vector<std::string>& roots,
               std::vector<Finding>* findings, std::string* error);

/// JSON array of findings: [{"file":...,"line":N,"rule":...,"message":...}].
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace xfraud::lint

#endif  // XFRAUD_TOOLS_LINT_CORE_H_
