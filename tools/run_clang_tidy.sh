#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library,
# tools, bench, and example sources using the compile database exported by
# CMake (CMAKE_EXPORT_COMPILE_COMMANDS is always ON, see CMakeLists.txt).
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
#
# The binary is resolved from $CLANG_TIDY, then PATH. Containers without a
# clang toolchain skip with exit 0 so tools/ci.sh --mode=lint stays usable
# everywhere; the static-analysis gate that always runs is xfraud_lint.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  TIDY="$(command -v clang-tidy || true)"
fi
if [[ -z "${TIDY}" ]]; then
  echo "run_clang_tidy: clang-tidy not found (set \$CLANG_TIDY or install it); skipping"
  exit 0
fi

DB="${BUILD_DIR}/compile_commands.json"
if [[ ! -f "${DB}" ]]; then
  echo "run_clang_tidy: ${DB} missing; configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi

# Sources with entries in the compile database, excluding third-party code
# and test fixtures that are broken on purpose.
mapfile -t FILES < <(
  git ls-files 'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc' \
    | grep -v 'lint_fixtures/'
)
if [[ "${#FILES[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no sources found" >&2
  exit 2
fi

echo "run_clang_tidy: ${TIDY} over ${#FILES[@]} files (db: ${DB})"
status=0
for f in "${FILES[@]}"; do
  "${TIDY}" -p "${BUILD_DIR}" --quiet "${f}" || status=1
done
if [[ "${status}" -ne 0 ]]; then
  echo "run_clang_tidy: findings above must be fixed" >&2
fi
exit "${status}"
