// xfraud_cli — command-line front end of the library, covering the
// operational loop a deployment needs without writing C++:
//
//   xfraud_cli generate --out log.tsv [--scale small|large|xlarge]
//       synthesize a transaction log (TSV, see data/log_io.h)
//   xfraud_cli train --log log.tsv --model detector.ckpt [--epochs N]
//       build the graph, train detector+, save a checkpoint
//   xfraud_cli score --log log.tsv --model detector.ckpt [--top N]
//       score every labeled transaction, print metrics + the riskiest N
//   xfraud_cli explain --log log.tsv --model detector.ckpt --txn <id>
//       run the hybrid explainer on one transaction's community and render
//       it (the paper's Fig. 11 workflow)
//   xfraud_cli serve-bench --log log.tsv [--model detector.ckpt] ...
//       drive the online scoring service (replicated KV, hedged reads,
//       deadlines, load shedding) and report tail latencies; with
//       --transport socket the tier is real shard-server processes behind
//       a supervised frame-speaking router
//   xfraud_cli serve-worker --cell cell.log --endpoint unix:<path> ...
//       run one shard-server process (what serve-bench's supervisor forks;
//       also usable standalone against a prepared cell WAL)
//   xfraud_cli dist-bench --log log.tsv --transport inproc|socket ...
//       run distributed data-parallel training over the chosen Communicator
//       backend (socket forks one real OS process per rank) and print the
//       per-epoch cost table
//   xfraud_cli dist-worker --log log.tsv --rank R --workers W ...
//       run one rank of a socket-backed cluster (what dist-bench's launcher
//       forks; also usable standalone for hand-launched clusters)
//
// Exit code 0 on success, 1 on usage/runtime errors.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "xfraud/xfraud.h"

namespace xfraud::cli {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::stoi(it->second);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
};

int Usage() {
  std::cerr <<
      "usage: xfraud_cli <command> [flags]\n"
      "  generate --out <log.tsv> [--scale small|large|xlarge] [--seed N]\n"
      "  train    --log <log.tsv> --model <ckpt> [--epochs N] [--hidden N]\n"
      "           [--sample-workers N] [--prefetch N]\n"
      "           [--checkpoint-dir D] [--resume] [--kv-serve]\n"
      "           [--kv-retries N] [--max-degraded-frac F]\n"
      "           [--fault-plan SPEC]\n"
      "  score    --log <log.tsv> --model <ckpt> [--top N]\n"
      "           [--sample-workers N] [--prefetch N]\n"
      "  explain  --log <log.tsv> --model <ckpt> --txn <txn_id>\n"
      "  serve-bench --log <log.tsv> [--model <ckpt>] [--requests N]\n"
      "           [--shards N] [--replicas N] [--hedge-delay-ms F]\n"
      "           [--deadline-ms F] [--max-inflight N]\n"
      "           [--shed-policy failfast|degrade] [--max-degraded-frac F]\n"
      "           [--fault-plan SPEC] [--threads N] [--virtual-clock]\n"
      "           [--transport inproc|socket] [--dir D]\n"
      "  serve-worker --cell <cell.log> --endpoint unix:<path>|tcp:host:port\n"
      "           [--shard S] [--replica R] [--hidden N] [--layers N]\n"
      "           [--seed N] [--generation G] [--suppress-kill]\n"
      "           [--deadline-ms F] [--idle-timeout SEC] [--fault-plan SPEC]\n"
      "  dist-bench --log <log.tsv> [--transport inproc|socket]\n"
      "           [--workers N] [--epochs N] [--batch N] [--clusters N]\n"
      "           [--recovery elastic|restart] [--fault-plan SPEC]\n"
      "           [--checkpoint-dir D] [--op-timeout SEC] [--timeout SEC]\n"
      "  dist-worker --log <log.tsv> --rank R --workers W\n"
      "           --rendezvous unix:<path>|tcp:host:port --checkpoint-dir D\n"
      "           [--epochs N] [--batch N] [--clusters N]\n"
      "           [--fault-plan SPEC] [--suppress-kill] [--op-timeout SEC]\n"
      "\n"
      "--sample-workers enables the pipelined batch loader: N sampler\n"
      "threads prefetch mini-batches ahead of the model (0 = inline\n"
      "sampling; results are bit-identical either way). --prefetch bounds\n"
      "how many ready batches they may buffer (default 4).\n"
      "\n"
      "observability (train/score): --metrics-out=<path>.json writes the\n"
      "obs::Registry snapshot (counters + p50/p95/p99 histograms of the\n"
      "sampler, loader, trainer, and KV paths; schema in DESIGN.md §8);\n"
      "--trace prints RAII span timings to stderr as they close.\n"
      "\n"
      "fault tolerance (train): --checkpoint-dir writes a CRC-verified\n"
      "checkpoint after every epoch; --resume continues from it\n"
      "bit-identically. --kv-serve serves batch features from a KV-backed\n"
      "store with --kv-retries retry attempts per read (default 4);\n"
      "batches whose reads exhaust retries are zero-imputed, and the run\n"
      "fails if more than --max-degraded-frac of an epoch's batches\n"
      "degrade. --fault-plan (or env XFRAUD_FAULT_PLAN) injects\n"
      "deterministic chaos, e.g.\n"
      "  seed=3,kv_error_rate=0.02,kv_latency_rate=0.01,kv_latency_s=1e-4\n"
      "(see DESIGN.md §10 for the full grammar).\n"
      "\n"
      "online serving (serve-bench): stands up --shards x --replicas\n"
      "in-memory KV cells behind the hardened read path (failover, circuit\n"
      "breakers, hedged reads after --hedge-delay-ms; negative disables\n"
      "hedging) and scores --requests labeled transactions under a\n"
      "--deadline-ms budget. Admission control sheds requests past\n"
      "--max-inflight concurrent scores: --shed-policy failfast refuses\n"
      "them, degrade answers from the mined-rule prefilter (counted\n"
      "against --max-degraded-frac). --fault-plan adds kill_replica=<r>,\n"
      "kill_shard=<s>, slow_replica=<r>@<sec> to the grammar above.\n"
      "--virtual-clock replays injected latency on simulated time\n"
      "(bit-deterministic with --threads 1); --model reuses a trained\n"
      "checkpoint, otherwise a seed-initialized detector is scored\n"
      "(latency-realistic either way). See DESIGN.md §11.\n"
      "\n"
      "serve-bench --transport socket promotes the tier to real OS\n"
      "processes (DESIGN.md §16): a supervisor forks one shard-server per\n"
      "--shards x --replicas grid slot under --dir (cell WALs + unix\n"
      "sockets), and a router scores over CRC-framed wire requests with\n"
      "failover, hedging, circuit breakers, and the remaining deadline\n"
      "propagated in each frame. --fault-plan gains kill_server=<r>[@<n>]\n"
      "(replica r of every shard SIGKILLs itself on its n-th request; the\n"
      "supervisor respawns it from the WAL) and corrupt_frame=<n> (flip a\n"
      "payload byte on the wire; the server detects it by CRC and the\n"
      "router resends). Scores stay bit-identical to the in-process tier.\n"
      "serve-worker runs one such server by hand.\n"
      "\n"
      "distributed training (dist-bench / dist-worker): --transport inproc\n"
      "runs every replica in this process over the shared-memory\n"
      "Communicator (bit-identical to the historical simulation);\n"
      "--transport socket forks one real OS process per rank, connected by\n"
      "a length-prefixed-frame ring over unix sockets with rank-0\n"
      "rendezvous. In socket mode kill_worker=<r>@<e>:<s> in --fault-plan\n"
      "is a real SIGKILL; the launcher re-forks the rank, which resumes\n"
      "from its CRC checkpoint under --checkpoint-dir and rejoins the\n"
      "ring. The epoch table reports the sync cost split by provenance:\n"
      "'modeled sync' (inproc: sync_overhead x steps) and 'measured comm'\n"
      "(socket: slowest rank's time inside collectives) — exactly one is\n"
      "set, never both summed. See DESIGN.md §12.\n";
  return 1;
}

Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("bad flag: " + arg);
    }
    // Accept --key=value, --key value, and bare boolean --key (stored "1").
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values[arg.substr(2)] = argv[++i];
    } else {
      flags.values[arg.substr(2)] = "1";
    }
  }
  return flags;
}

core::DetectorConfig ConfigFor(const graph::HeteroGraph& g,
                               const Flags& flags) {
  core::DetectorConfig dc;
  dc.feature_dim = g.feature_dim();
  dc.hidden_dim = flags.GetInt("hidden", 32);
  dc.num_heads = 4;
  dc.num_layers = flags.GetInt("layers", 2);
  return dc;
}

/// Exercises the KV feature-store path so a --metrics-out snapshot covers
/// it even though train/score serve batches from the in-memory graph:
/// ingests the graph into a sharded in-memory store and loads a few
/// batches back through pure KV reads, populating the kv/* counters and
/// per-shard latency histograms.
void ProbeKvPath(const data::SimDataset& ds) {
  obs::ScopedSpan span("cli/kv_probe");
  auto store = kv::ShardedKvStore::InMemory(4);
  kv::FeatureStore feature_store(store.get());
  Status s = feature_store.Ingest(ds.graph);
  if (!s.ok()) {
    std::cerr << "kv probe: " << s.ToString() << "\n";
    return;
  }
  Rng rng(23);
  auto seeds = ds.graph.LabeledTransactions();
  size_t limit = std::min<size_t>(seeds.size(), 512);
  for (size_t begin = 0; begin < limit; begin += 128) {
    std::vector<int32_t> batch(
        seeds.begin() + begin,
        seeds.begin() + std::min(begin + 128, limit));
    auto loaded = feature_store.LoadBatch(batch, /*hops=*/2, /*fanout=*/12,
                                          &rng, kv::kHeadEpoch);
    if (!loaded.ok()) {
      std::cerr << "kv probe: " << loaded.status().ToString() << "\n";
      return;
    }
  }
}

/// Writes the global registry snapshot when --metrics-out is set.
int WriteMetricsSnapshot(const Flags& flags) {
  std::string path = flags.Get("metrics-out");
  if (path.empty()) return 0;
  Status s = obs::Registry::Global().WriteJsonFile(path);
  if (!s.ok()) {
    std::cerr << "metrics-out: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote metrics snapshot to " << path << "\n";
  return 0;
}

/// Loads the log, builds the dataset, reports basic stats.
Result<data::SimDataset> LoadDataset(const Flags& flags) {
  std::string path = flags.Get("log");
  if (path.empty()) return Status::InvalidArgument("--log is required");
  auto records = data::ReadTransactionLog(path);
  if (!records.ok()) return records.status();
  data::SimDataset ds = data::TransactionGenerator::BuildDataset(
      records.value(), path, 0.7, 0.1, flags.GetInt("seed", 7));
  std::cout << "loaded " << records.value().size() << " transactions -> "
            << ds.graph.num_nodes() << " nodes, " << ds.graph.num_edges() / 2
            << " undirected edges, "
            << TablePrinter::Num(ds.graph.FraudRate() * 100, 2)
            << "% fraud\n";
  return ds;
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.Get("out");
  if (out.empty()) {
    std::cerr << "generate: --out is required\n";
    return 1;
  }
  std::string scale = flags.Get("scale", "small");
  data::GeneratorConfig config =
      scale == "xlarge" ? data::TransactionGenerator::SimXLarge()
      : scale == "large" ? data::TransactionGenerator::SimLarge()
                         : data::TransactionGenerator::SimSmall();
  if (flags.Has("seed")) config.seed = flags.GetInt("seed", 42);
  data::TransactionGenerator generator(config);
  auto records = generator.GenerateRecords();
  Status s = data::WriteTransactionLog(records, out);
  if (!s.ok()) {
    std::cerr << "generate: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << records.size() << " transactions to " << out
            << "\n";
  return 0;
}

int CmdTrain(const Flags& flags) {
  auto ds = LoadDataset(flags);
  if (!ds.ok()) {
    std::cerr << "train: " << ds.status().ToString() << "\n";
    return 1;
  }
  std::string model_path = flags.Get("model");
  if (model_path.empty()) {
    std::cerr << "train: --model is required\n";
    return 1;
  }
  Rng rng(flags.GetInt("seed", 7));
  core::XFraudDetector detector(ConfigFor(ds.value().graph, flags), &rng);
  sample::SageSampler sampler(2, 12);
  train::TrainOptions opts;
  opts.max_epochs = flags.GetInt("epochs", 12);
  opts.patience = opts.max_epochs;
  opts.class_weights = {1.0f, 4.0f};
  opts.lr = 2e-3f;
  opts.verbose = true;
  opts.num_sample_workers = flags.GetInt("sample-workers", 0);
  opts.prefetch_depth = flags.GetInt("prefetch", 4);
  opts.trace = flags.Has("trace");
  opts.checkpoint_dir = flags.Get("checkpoint-dir");
  opts.resume = flags.Has("resume");
  opts.max_degraded_frac = flags.GetDouble("max-degraded-frac", 1.0);

  // --kv-serve: serve batch features through the KV path (with retries and
  // degraded-mode imputation) instead of the in-memory graph. --fault-plan
  // (or env XFRAUD_FAULT_PLAN) injects deterministic chaos in front of it.
  std::unique_ptr<kv::ShardedKvStore> kv_store;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultyKvStore> faulty_store;
  std::unique_ptr<kv::FeatureStore> feature_store;
  if (flags.Has("fault-plan") || std::getenv("XFRAUD_FAULT_PLAN") != nullptr) {
    Result<fault::FaultPlan> plan =
        flags.Has("fault-plan") ? fault::FaultPlan::Parse(flags.Get("fault-plan"))
                                : fault::FaultPlan::FromEnv();
    if (!plan.ok()) {
      std::cerr << "train: " << plan.status().ToString() << "\n";
      return 1;
    }
    injector = std::make_unique<fault::FaultInjector>(plan.value());
    std::cout << "fault plan: " << plan.value().ToString() << "\n";
  }
  if (flags.Has("kv-serve")) {
    kv_store = kv::ShardedKvStore::InMemory(4);
    kv::KvStore* serving = kv_store.get();
    {
      // Bulk load through the raw store; faults belong to the serving path.
      kv::FeatureStore ingest(kv_store.get());
      Status s = ingest.Ingest(ds.value().graph);
      if (!s.ok()) {
        std::cerr << "train: kv ingest: " << s.ToString() << "\n";
        return 1;
      }
    }
    if (injector != nullptr) {
      faulty_store =
          std::make_unique<fault::FaultyKvStore>(kv_store.get(), injector.get());
      serving = faulty_store.get();
    }
    feature_store = std::make_unique<kv::FeatureStore>(serving);
    RetryPolicy retry;
    retry.max_attempts = flags.GetInt("kv-retries", 4);
    feature_store->set_retry_policy(retry);
    opts.feature_store = feature_store.get();
  }

  train::Trainer trainer(&detector, &sampler, opts);
  auto result = trainer.Train(ds.value());
  if (!result.error.ok()) {
    std::cerr << "train: " << result.error.ToString() << "\n";
    return 1;
  }
  if (result.degraded_batches > 0) {
    std::cout << "degraded batches: " << result.degraded_batches << "/"
              << result.total_batches << "\n";
  }
  auto test = trainer.Evaluate(ds.value().graph, ds.value().test_nodes);
  std::cout << "best val AUC " << TablePrinter::Num(result.best_val_auc, 4)
            << ", test AUC " << TablePrinter::Num(test.auc, 4) << ", AP "
            << TablePrinter::Num(test.ap, 4) << "\n";
  Status s = nn::SaveParameters(detector.Parameters(), model_path);
  if (!s.ok()) {
    std::cerr << "train: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "saved checkpoint to " << model_path << "\n";
  if (flags.Has("metrics-out")) ProbeKvPath(ds.value());
  return WriteMetricsSnapshot(flags);
}

Result<std::unique_ptr<core::XFraudDetector>> LoadDetector(
    const graph::HeteroGraph& g, const Flags& flags) {
  std::string model_path = flags.Get("model");
  if (model_path.empty()) return Status::InvalidArgument("--model required");
  Rng rng(flags.GetInt("seed", 7));
  auto detector =
      std::make_unique<core::XFraudDetector>(ConfigFor(g, flags), &rng);
  auto params = detector->Parameters();
  XF_RETURN_IF_ERROR(nn::LoadParameters(model_path, &params));
  return detector;
}

int CmdScore(const Flags& flags) {
  auto ds = LoadDataset(flags);
  if (!ds.ok()) {
    std::cerr << "score: " << ds.status().ToString() << "\n";
    return 1;
  }
  auto detector = LoadDetector(ds.value().graph, flags);
  if (!detector.ok()) {
    std::cerr << "score: " << detector.status().ToString() << "\n";
    return 1;
  }
  sample::SageSampler sampler(2, 12);
  train::TrainOptions score_opts;
  score_opts.num_sample_workers = flags.GetInt("sample-workers", 0);
  score_opts.prefetch_depth = flags.GetInt("prefetch", 4);
  score_opts.trace = flags.Has("trace");
  train::Trainer scorer(detector.value().get(), &sampler, score_opts);
  auto labeled = ds.value().graph.LabeledTransactions();
  auto eval = scorer.Evaluate(ds.value().graph, labeled);
  std::cout << "scored " << labeled.size() << " transactions: AUC "
            << TablePrinter::Num(eval.auc, 4) << ", AP "
            << TablePrinter::Num(eval.ap, 4) << " (sampling "
            << TablePrinter::Num(eval.sample_secs_per_batch_mean, 4)
            << " s/batch, inference "
            << TablePrinter::Num(eval.secs_per_batch_mean, 4)
            << " s/batch)\n";

  int top = flags.GetInt("top", 10);
  std::vector<size_t> order(eval.scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return eval.scores[a] > eval.scores[b];
  });
  TablePrinter table({"node", "risk score", "label"});
  for (int i = 0; i < top && i < static_cast<int>(order.size()); ++i) {
    size_t idx = order[i];
    table.AddRow({std::to_string(labeled[idx]),
                  TablePrinter::Num(eval.scores[idx], 4),
                  eval.labels[idx] == 1 ? "fraud" : "benign"});
  }
  std::cout << "top " << top << " riskiest transactions:\n";
  table.Print(std::cout);
  if (flags.Has("metrics-out")) ProbeKvPath(ds.value());
  return WriteMetricsSnapshot(flags);
}

int CmdExplain(const Flags& flags) {
  std::string txn_id = flags.Get("txn");
  if (txn_id.empty()) {
    std::cerr << "explain: --txn is required\n";
    return 1;
  }
  std::string path = flags.Get("log");
  auto records = data::ReadTransactionLog(path);
  if (!records.ok()) {
    std::cerr << "explain: " << records.status().ToString() << "\n";
    return 1;
  }
  graph::GraphBuilder builder;
  for (const auto& r : records.value()) {
    Status s = builder.AddTransaction(r);
    if (!s.ok()) {
      std::cerr << "explain: " << s.ToString() << "\n";
      return 1;
    }
  }
  graph::HeteroGraph g = builder.Build();
  int32_t seed = builder.TxnNode(txn_id);
  if (seed < 0) {
    std::cerr << "explain: unknown transaction id " << txn_id << "\n";
    return 1;
  }
  auto detector = LoadDetector(g, flags);
  if (!detector.ok()) {
    std::cerr << "explain: " << detector.status().ToString() << "\n";
    return 1;
  }

  Rng rng(11);
  graph::Subgraph community = graph::KHopSubgraph(g, seed, 3, 10, &rng);
  sample::MiniBatch batch = sample::MakeBatch(g, community, {seed});
  double risk = train::FraudProbabilities(
      detector.value()->Forward(batch, core::ForwardOptions{}))[0];
  std::cout << "transaction " << txn_id << ": risk score "
            << TablePrinter::Num(risk, 4) << "\n";

  explain::GnnExplainer explainer(detector.value().get(),
                                  explain::GnnExplainerOptions{});
  explain::Explanation explanation = explainer.Explain(batch);
  auto undirected = graph::UndirectedEdges(community);
  auto centrality = explain::EdgeWeightsByCentrality(
      undirected, community.num_nodes(),
      explain::CentralityMeasure::kEdgeBetweenness, &rng);

  // Even blend of the task-agnostic and task-aware weights (§3.4.2); train
  // the coefficients with bench_table4_hybrid for a fitted combination.
  std::vector<double> hybrid(undirected.size());
  auto normalize = [](std::vector<double> w) {
    double lo = *std::min_element(w.begin(), w.end());
    double hi = *std::max_element(w.begin(), w.end());
    for (auto& x : w) x = hi > lo ? (x - lo) / (hi - lo) : 0.0;
    return w;
  };
  auto wc = normalize(centrality);
  auto we = normalize(explanation.undirected_edge_weights);
  for (size_t e = 0; e < hybrid.size(); ++e) {
    hybrid[e] = 0.5 * wc[e] + 0.5 * we[e];
  }
  std::cout << explain::RenderCommunity(g, community, hybrid, 20);
  return 0;
}

/// Exact interpolated percentile over raw samples (matches
/// bench_serve_tail_latency; the obs histogram only estimates).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - lo);
}

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().counter(name)->value();
}

int CmdServeBenchSocket(const Flags& flags, const data::SimDataset& ds);

int CmdServeBench(const Flags& flags) {
  std::string path = flags.Get("log");
  if (path.empty()) {
    std::cerr << "serve-bench: --log is required\n";
    return 1;
  }
  auto records = data::ReadTransactionLog(path);
  if (!records.ok()) {
    std::cerr << "serve-bench: " << records.status().ToString() << "\n";
    return 1;
  }
  data::SimDataset ds = data::TransactionGenerator::BuildDataset(
      records.value(), path, 0.7, 0.1, flags.GetInt("seed", 7));

  const std::string transport = flags.Get("transport", "inproc");
  if (transport != "inproc" && transport != "socket") {
    std::cerr << "serve-bench: --transport must be inproc or socket\n";
    return 1;
  }
  if (transport == "socket") return CmdServeBenchSocket(flags, ds);

  VirtualClock virtual_clock;
  Clock* clock =
      flags.Has("virtual-clock") ? &virtual_clock : Clock::Real();

  serve::TopologyOptions topo;
  topo.num_shards = flags.GetInt("shards", 4);
  topo.num_replicas = flags.GetInt("replicas", 3);
  topo.clock = clock;
  topo.replication.hedge_delay_s =
      flags.GetDouble("hedge-delay-ms", -1.0) * 1e-3;
  if (flags.Has("fault-plan") || std::getenv("XFRAUD_FAULT_PLAN") != nullptr) {
    Result<fault::FaultPlan> plan =
        flags.Has("fault-plan")
            ? fault::FaultPlan::Parse(flags.Get("fault-plan"))
            : fault::FaultPlan::FromEnv();
    if (!plan.ok()) {
      std::cerr << "serve-bench: " << plan.status().ToString() << "\n";
      return 1;
    }
    topo.plan = plan.value();
    std::cout << "fault plan: " << plan.value().ToString() << "\n";
  }
  serve::ServingTopology topology(topo);
  Status ingest = topology.Ingest(ds.graph);
  if (!ingest.ok()) {
    std::cerr << "serve-bench: ingest: " << ingest.ToString() << "\n";
    return 1;
  }
  kv::FeatureStore features(topology.serving());

  // Score with the trained checkpoint when given; a fresh seed-initialized
  // detector exercises the identical serving path otherwise.
  Rng rng(flags.GetInt("seed", 7));
  std::unique_ptr<core::XFraudDetector> detector;
  if (flags.Has("model")) {
    auto loaded = LoadDetector(ds.graph, flags);
    if (!loaded.ok()) {
      std::cerr << "serve-bench: " << loaded.status().ToString() << "\n";
      return 1;
    }
    detector = std::move(loaded.value());
  } else {
    detector = std::make_unique<core::XFraudDetector>(
        ConfigFor(ds.graph, flags), &rng);
  }

  std::string shed = flags.Get("shed-policy", "failfast");
  if (shed != "failfast" && shed != "degrade") {
    std::cerr << "serve-bench: --shed-policy must be failfast or degrade\n";
    return 1;
  }
  serve::ServiceOptions options;
  options.deadline_s = flags.GetDouble("deadline-ms", 250.0) * 1e-3;
  options.max_inflight = flags.GetInt("max-inflight", 64);
  options.shed_policy = shed == "degrade" ? serve::ShedPolicy::kDegrade
                                          : serve::ShedPolicy::kFailFast;
  options.max_degraded_frac = flags.GetDouble("max-degraded-frac", 1.0);
  options.clock = clock;
  serve::ScoringService service(detector.get(), &features, options);
  baselines::RuleScorer fallback = baselines::RuleScorer::FromFilter(
      data::RuleFilter::Fit(records.value(), data::RuleFilter::Options{}));
  service.set_fallback(&fallback);

  auto seeds = ds.graph.LabeledTransactions();
  if (seeds.empty()) {
    std::cerr << "serve-bench: log has no labeled transactions\n";
    return 1;
  }
  const int num_requests =
      std::max(1, flags.GetInt("requests", 200));
  const int num_threads = std::max(1, flags.GetInt("threads", 1));

  const int64_t hedged_before = CounterValue("kv/replicated/hedged_reads");
  const int64_t wins_before = CounterValue("kv/replicated/hedge_wins");
  const int64_t failovers_before = CounterValue("kv/replicated/failovers");
  const int64_t opens_before = CounterValue("kv/replicated/breaker_opens");

  std::vector<double> latencies(static_cast<size_t>(num_requests), -1.0);
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> deadline_count{0};
  std::atomic<int> degraded_count{0};
  std::atomic<int> prefilter_count{0};
  auto worker = [&](int first, int last) {
    for (int r = first; r < last; ++r) {
      const int32_t node = seeds[static_cast<size_t>(r) % seeds.size()];
      auto resp = service.Score(/*request_id=*/r, node);
      if (resp.ok()) {
        ok_count.fetch_add(1);
        latencies[static_cast<size_t>(r)] = resp.value().latency_s;
        if (resp.value().degraded) degraded_count.fetch_add(1);
        if (resp.value().from_prefilter) prefilter_count.fetch_add(1);
      } else if (resp.status().IsDeadlineExceeded()) {
        deadline_count.fetch_add(1);
      } else {
        shed_count.fetch_add(1);
      }
    }
  };
  WallTimer timer;
  if (num_threads == 1) {
    worker(0, num_requests);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    const int per = (num_requests + num_threads - 1) / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      const int first = t * per;
      threads.emplace_back(worker, std::min(first, num_requests),
                           std::min(first + per, num_requests));
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = timer.ElapsedSeconds();

  std::vector<double> ok_latencies;
  for (double l : latencies) {
    if (l >= 0.0) ok_latencies.push_back(l);
  }
  std::cout << "scored " << num_requests << " requests on " << num_threads
            << " thread(s) in " << TablePrinter::Num(wall_s, 2) << "s ("
            << topo.num_shards << " shards x " << topo.num_replicas
            << " replicas";
  if (flags.Has("virtual-clock")) {
    std::cout << ", virtual clock at "
              << TablePrinter::Num(virtual_clock.NowSeconds(), 3) << "s";
  }
  std::cout << ")\n";
  TablePrinter table({"metric", "value"});
  table.AddRow({"ok", std::to_string(ok_count.load())});
  table.AddRow({"shed / unavailable", std::to_string(shed_count.load())});
  table.AddRow({"deadline exceeded", std::to_string(deadline_count.load())});
  table.AddRow({"degraded", std::to_string(degraded_count.load())});
  table.AddRow({"prefilter fallback", std::to_string(prefilter_count.load())});
  table.AddRow(
      {"p50 (ms)", TablePrinter::Num(Percentile(ok_latencies, 0.50) * 1e3, 2)});
  table.AddRow(
      {"p95 (ms)", TablePrinter::Num(Percentile(ok_latencies, 0.95) * 1e3, 2)});
  table.AddRow(
      {"p99 (ms)", TablePrinter::Num(Percentile(ok_latencies, 0.99) * 1e3, 2)});
  table.AddRow({"hedged reads",
                std::to_string(CounterValue("kv/replicated/hedged_reads") -
                               hedged_before)});
  table.AddRow({"hedge wins",
                std::to_string(CounterValue("kv/replicated/hedge_wins") -
                               wins_before)});
  table.AddRow({"failovers",
                std::to_string(CounterValue("kv/replicated/failovers") -
                               failovers_before)});
  table.AddRow({"breaker opens",
                std::to_string(CounterValue("kv/replicated/breaker_opens") -
                               opens_before)});
  table.Print(std::cout);
  return WriteMetricsSnapshot(flags);
}

/// Parses --fault-plan / XFRAUD_FAULT_PLAN; an empty plan when neither is
/// set.
Result<fault::FaultPlan> PlanFromFlags(const Flags& flags) {
  if (flags.Has("fault-plan")) {
    return fault::FaultPlan::Parse(flags.Get("fault-plan"));
  }
  if (std::getenv("XFRAUD_FAULT_PLAN") != nullptr) {
    return fault::FaultPlan::FromEnv();
  }
  return fault::FaultPlan{};
}

/// serve-bench --transport=socket: the real multi-process tier. The
/// Supervisor forks one shard-server process per grid slot; the bench
/// drives a frame-speaking Router at them and reports *end-to-end wire*
/// latencies (the in-process table reports server-side scoring time), plus
/// the router/supervisor chaos counters. Requests run on one thread — the
/// Router is deliberately single-threaded (one per thread in real use).
int CmdServeBenchSocket(const Flags& flags, const data::SimDataset& ds) {
  auto plan = PlanFromFlags(flags);
  if (!plan.ok()) {
    std::cerr << "serve-bench: " << plan.status().ToString() << "\n";
    return 1;
  }
  if (plan.value().any()) {
    std::cout << "fault plan: " << plan.value().ToString() << "\n";
  }

  serve::SupervisorOptions sup_options;
  sup_options.dir = flags.Get("dir", "/tmp/xfraud-serve-bench");
  sup_options.num_shards = flags.GetInt("shards", 2);
  sup_options.num_replicas = flags.GetInt("replicas", 2);
  sup_options.detector = ConfigFor(ds.graph, flags);
  sup_options.model_seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  sup_options.service.deadline_s =
      flags.GetDouble("deadline-ms", 250.0) * 1e-3;
  sup_options.service.max_inflight = flags.GetInt("max-inflight", 64);
  sup_options.plan = plan.value();
  std::cout << "forking " << sup_options.num_shards << " x "
            << sup_options.num_replicas << " shard-server process(es) under "
            << sup_options.dir << "\n";
  auto sup = serve::Supervisor::Start(ds.graph, sup_options);
  if (!sup.ok()) {
    std::cerr << "serve-bench: " << sup.status().ToString() << "\n";
    return 1;
  }

  serve::RouterOptions router_options = sup.value()->MakeRouterOptions();
  router_options.hedge_delay_s =
      flags.GetDouble("hedge-delay-ms", -1.0) * 1e-3;
  serve::Router router(router_options);

  auto seeds = ds.graph.LabeledTransactions();
  if (seeds.empty()) {
    std::cerr << "serve-bench: log has no labeled transactions\n";
    return 1;
  }
  const int num_requests = std::max(1, flags.GetInt("requests", 200));
  const int64_t hedged_before = CounterValue("serve/router/hedged");
  const int64_t wins_before = CounterValue("serve/router/hedge_wins");
  const int64_t failovers_before = CounterValue("serve/router/failovers");
  const int64_t opens_before = CounterValue("serve/router/breaker_opens");
  const int64_t corrupt_before = CounterValue("serve/router/corrupt_retries");
  const int64_t redials_before = CounterValue("serve/router/redials");

  std::vector<double> ok_latencies;
  int ok_count = 0, shed_count = 0, deadline_count = 0;
  WallTimer timer;
  for (int r = 0; r < num_requests; ++r) {
    const int32_t node = seeds[static_cast<size_t>(r) % seeds.size()];
    WallTimer request_timer;
    auto resp = router.Score(/*request_id=*/r, node);
    if (resp.ok()) {
      ++ok_count;
      ok_latencies.push_back(request_timer.ElapsedSeconds());
    } else if (resp.status().IsDeadlineExceeded()) {
      ++deadline_count;
    } else {
      ++shed_count;
    }
  }
  const double wall_s = timer.ElapsedSeconds();

  std::cout << "scored " << num_requests << " requests over the wire in "
            << TablePrinter::Num(wall_s, 2) << "s ("
            << sup_options.num_shards << " shards x "
            << sup_options.num_replicas << " replica processes)\n";
  TablePrinter table({"metric", "value"});
  table.AddRow({"ok", std::to_string(ok_count)});
  table.AddRow({"shed / unavailable", std::to_string(shed_count)});
  table.AddRow({"deadline exceeded", std::to_string(deadline_count)});
  table.AddRow(
      {"p50 (ms)", TablePrinter::Num(Percentile(ok_latencies, 0.50) * 1e3, 2)});
  table.AddRow(
      {"p95 (ms)", TablePrinter::Num(Percentile(ok_latencies, 0.95) * 1e3, 2)});
  table.AddRow(
      {"p99 (ms)", TablePrinter::Num(Percentile(ok_latencies, 0.99) * 1e3, 2)});
  table.AddRow({"hedged requests",
                std::to_string(CounterValue("serve/router/hedged") -
                               hedged_before)});
  table.AddRow({"hedge wins",
                std::to_string(CounterValue("serve/router/hedge_wins") -
                               wins_before)});
  table.AddRow({"failovers",
                std::to_string(CounterValue("serve/router/failovers") -
                               failovers_before)});
  table.AddRow({"breaker opens",
                std::to_string(CounterValue("serve/router/breaker_opens") -
                               opens_before)});
  table.AddRow({"corrupt-frame retries",
                std::to_string(CounterValue("serve/router/corrupt_retries") -
                               corrupt_before)});
  table.AddRow({"redials",
                std::to_string(CounterValue("serve/router/redials") -
                               redials_before)});
  table.AddRow({"server respawns", std::to_string(sup.value()->restarts())});
  table.Print(std::cout);
  const std::vector<int> kills = sup.value()->kills_observed();
  if (!kills.empty()) {
    std::cout << "kills observed (shard*R+replica):";
    for (int k : kills) std::cout << " " << k;
    std::cout << " — " << sup.value()->restarts() << " respawn(s)\n";
  }
  Status stop = sup.value()->Stop();
  if (!stop.ok()) {
    std::cerr << "serve-bench: stop: " << stop.ToString() << "\n";
    return 1;
  }
  return WriteMetricsSnapshot(flags);
}

/// One shard-server process, hand-launched (what serve::Supervisor forks —
/// also usable standalone against a prepared cell WAL). Blocks until
/// drained, idle-timeout, or error.
int CmdServeWorker(const Flags& flags) {
  serve::ShardServerOptions options;
  options.cell_path = flags.Get("cell");
  if (options.cell_path.empty()) {
    std::cerr << "serve-worker: --cell is required\n";
    return 1;
  }
  auto endpoint = dist::ParseEndpoint(flags.Get("endpoint"));
  if (!endpoint.ok()) {
    std::cerr << "serve-worker: --endpoint: " << endpoint.status().ToString()
              << "\n";
    return 1;
  }
  options.endpoint = endpoint.value();
  options.shard = flags.GetInt("shard", 0);
  options.replica = flags.GetInt("replica", 0);
  // feature_dim comes from the cell WAL at the pinned epoch; only the
  // shape knobs are flag-settable, and they must match the tier's router
  // side (same defaults as ConfigFor) or replica scores diverge.
  options.detector.hidden_dim = flags.GetInt("hidden", 32);
  options.detector.num_layers = flags.GetInt("layers", 2);
  options.model_seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.service.deadline_s = flags.GetDouble("deadline-ms", 250.0) * 1e-3;
  options.service.max_inflight = flags.GetInt("max-inflight", 64);
  options.generation = static_cast<uint64_t>(flags.GetInt("generation", 1));
  options.suppress_kill = flags.Has("suppress-kill");
  options.idle_timeout_s = flags.GetDouble("idle-timeout", 600.0);
  auto plan = PlanFromFlags(flags);
  if (!plan.ok()) {
    std::cerr << "serve-worker: " << plan.status().ToString() << "\n";
    return 1;
  }
  options.fault_plan = plan.value();
  auto stats = serve::RunShardServer(options);
  if (!stats.ok()) {
    std::cerr << "serve-worker: " << stats.status().ToString() << "\n";
    return 1;
  }
  std::cout << "serve-worker s" << options.shard << "r" << options.replica
            << ": served " << stats.value().requests_served
            << " request(s), " << stats.value().corrupt_frames_rejected
            << " corrupt frame(s) rejected, "
            << stats.value().deadline_rejects << " deadline reject(s)"
            << (stats.value().drained ? ", drained" : "") << "\n";
  return 0;
}

/// DistWorkerOptions shared by dist-worker and dist-bench --transport
/// socket: both sides of a cluster must derive identical options from
/// identical flags or the replicas diverge at step zero.
dist::DistWorkerOptions WorkerOptionsFromFlags(const data::SimDataset& ds,
                                               const Flags& flags) {
  dist::DistWorkerOptions w;
  w.rank = flags.GetInt("rank", 0);
  w.world = std::max(1, flags.GetInt("workers", 4));
  w.rendezvous = flags.Get("rendezvous");
  w.detector = ConfigFor(ds.graph, flags);
  w.model_seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  w.dist.num_workers = w.world;
  w.dist.num_clusters = flags.GetInt("clusters", 32);
  w.dist.train.max_epochs = flags.GetInt("epochs", 6);
  w.dist.train.patience =
      flags.GetInt("patience", w.dist.train.max_epochs);
  w.dist.train.batch_size = flags.GetInt("batch", 128);
  w.dist.train.lr = 2e-3f;
  w.dist.train.class_weights = {1.0f, 4.0f};
  w.dist.train.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  w.dist.train.num_sample_workers = flags.GetInt("sample-workers", 0);
  w.dist.train.prefetch_depth = flags.GetInt("prefetch", 4);
  w.checkpoint_dir = flags.Get("checkpoint-dir");
  w.suppress_kill = flags.Has("suppress-kill");
  w.op_timeout_s = flags.GetDouble("op-timeout", 60.0);
  return w;
}

/// Per-epoch cost table of a distributed run. The sync cost is printed
/// split by provenance — "modeled sync" (in-process: sync_overhead x
/// steps) vs "measured comm" (socket: slowest rank's time inside
/// collectives). Exactly one of the pair is ever set; the other prints "-"
/// so the two can never read as summed.
void PrintDistResult(const dist::DistributedResult& result) {
  TablePrinter table({"epoch", "loss", "val auc", "wall (s)",
                      "modeled sync (s)", "measured comm (s)",
                      "sim cluster (s)", "recovery"});
  for (const auto& e : result.history) {
    std::string recovery = "-";
    if (e.restarted || e.killed_worker >= 0) {
      recovery = e.restarted ? "restart" : "elastic";
      if (e.killed_worker >= 0) {
        recovery += " w" + std::to_string(e.killed_worker);
      }
      recovery += " +" + TablePrinter::Num(e.recovery_seconds, 3) + "s";
    }
    table.AddRow(
        {std::to_string(e.epoch), TablePrinter::Num(e.train_loss, 4),
         TablePrinter::Num(e.val_auc, 4),
         TablePrinter::Num(e.wall_seconds, 3),
         e.modeled_sync_seconds > 0.0
             ? TablePrinter::Num(e.modeled_sync_seconds, 4)
             : "-",
         e.measured_comm_seconds > 0.0
             ? TablePrinter::Num(e.measured_comm_seconds, 4)
             : "-",
         TablePrinter::Num(e.simulated_cluster_seconds, 3), recovery});
  }
  table.Print(std::cout);
  std::cout << "best val AUC " << TablePrinter::Num(result.best_val_auc, 4)
            << ", mean wall epoch "
            << TablePrinter::Num(result.mean_wall_epoch_seconds, 3)
            << "s, mean simulated epoch "
            << TablePrinter::Num(result.mean_simulated_epoch_seconds, 3)
            << "s, edge cut "
            << TablePrinter::Num(result.edge_cut_fraction * 100, 1)
            << "%\npartition nodes:";
  for (int64_t n : result.partition_nodes) std::cout << " " << n;
  std::cout << "\n";
}

int CmdDistWorker(const Flags& flags) {
  auto ds = LoadDataset(flags);
  if (!ds.ok()) {
    std::cerr << "dist-worker: " << ds.status().ToString() << "\n";
    return 1;
  }
  if (!flags.Has("rank")) {
    std::cerr << "dist-worker: --rank is required\n";
    return 1;
  }
  dist::DistWorkerOptions worker = WorkerOptionsFromFlags(ds.value(), flags);
  if (worker.rendezvous.empty()) {
    std::cerr << "dist-worker: --rendezvous is required\n";
    return 1;
  }
  if (worker.checkpoint_dir.empty()) {
    std::cerr << "dist-worker: --checkpoint-dir is required\n";
    return 1;
  }
  auto plan = PlanFromFlags(flags);
  if (!plan.ok()) {
    std::cerr << "dist-worker: " << plan.status().ToString() << "\n";
    return 1;
  }
  worker.fault_plan = plan.value();
  auto result = dist::RunDistWorker(ds.value(), worker);
  if (!result.ok()) {
    std::cerr << "dist-worker: " << result.status().ToString() << "\n";
    return 1;
  }
  if (worker.rank == 0) PrintDistResult(result.value());
  return WriteMetricsSnapshot(flags);
}

int CmdDistBench(const Flags& flags) {
  auto ds = LoadDataset(flags);
  if (!ds.ok()) {
    std::cerr << "dist-bench: " << ds.status().ToString() << "\n";
    return 1;
  }
  std::string transport = flags.Get("transport", "inproc");
  if (transport != "inproc" && transport != "socket") {
    std::cerr << "dist-bench: --transport must be inproc or socket\n";
    return 1;
  }
  std::string recovery = flags.Get("recovery", "elastic");
  if (recovery != "elastic" && recovery != "restart") {
    std::cerr << "dist-bench: --recovery must be elastic or restart\n";
    return 1;
  }
  auto plan = PlanFromFlags(flags);
  if (!plan.ok()) {
    std::cerr << "dist-bench: " << plan.status().ToString() << "\n";
    return 1;
  }
  if (plan.value().any()) {
    std::cout << "fault plan: " << plan.value().ToString() << "\n";
  }

  if (transport == "socket") {
    dist::ProcessClusterOptions cluster;
    cluster.worker = WorkerOptionsFromFlags(ds.value(), flags);
    cluster.worker.fault_plan = plan.value();
    if (cluster.worker.checkpoint_dir.empty()) {
      cluster.worker.checkpoint_dir = "/tmp/xfraud-dist-bench";
    }
    cluster.overall_timeout_s = flags.GetDouble("timeout", 600.0);
    std::cout << "forking " << cluster.worker.world
              << " worker process(es), rendezvous + checkpoints under "
              << cluster.worker.checkpoint_dir << "\n";
    auto report = dist::RunProcessCluster(ds.value(), cluster);
    if (!report.ok()) {
      std::cerr << "dist-bench: " << report.status().ToString() << "\n";
      return 1;
    }
    if (!report.value().kills_observed.empty()) {
      std::cout << "kills observed (rank):";
      for (int r : report.value().kills_observed) std::cout << " " << r;
      std::cout << " — " << report.value().restarts << " restart(s)\n";
    }
    PrintDistResult(report.value().result);
    return WriteMetricsSnapshot(flags);
  }

  // In-process: kappa identically-seeded replicas over the shared-memory
  // Communicator (the historical simulation, bit-identical).
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int kappa = std::max(1, flags.GetInt("workers", 4));
  std::vector<std::unique_ptr<core::XFraudDetector>> replicas;
  std::vector<core::GnnModel*> ptrs;
  for (int w = 0; w < kappa; ++w) {
    Rng rng(seed);
    replicas.push_back(std::make_unique<core::XFraudDetector>(
        ConfigFor(ds.value().graph, flags), &rng));
    ptrs.push_back(replicas.back().get());
  }
  sample::SageSampler sampler(2, 8);
  dist::DistributedOptions options =
      WorkerOptionsFromFlags(ds.value(), flags).dist;
  options.recovery = recovery == "restart"
                         ? dist::FailureRecovery::kRestartEpoch
                         : dist::FailureRecovery::kElastic;
  std::unique_ptr<fault::FaultInjector> injector;
  if (plan.value().any()) {
    injector = std::make_unique<fault::FaultInjector>(plan.value());
    options.fault_injector = injector.get();
  }
  dist::DistributedTrainer trainer(ptrs, &sampler, options);
  dist::DistributedResult result = trainer.Train(ds.value());
  PrintDistResult(result);
  return WriteMetricsSnapshot(flags);
}

int Main(int argc, char** argv) {
  SetMinLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return Usage();
  }
  if (flags.value().Has("trace")) obs::SetTraceLogging(true);
  if (command == "generate") return CmdGenerate(flags.value());
  if (command == "train") return CmdTrain(flags.value());
  if (command == "score") return CmdScore(flags.value());
  if (command == "explain") return CmdExplain(flags.value());
  if (command == "serve-bench") return CmdServeBench(flags.value());
  if (command == "serve-worker") return CmdServeWorker(flags.value());
  if (command == "dist-bench") return CmdDistBench(flags.value());
  if (command == "dist-worker") return CmdDistWorker(flags.value());
  return Usage();
}

}  // namespace
}  // namespace xfraud::cli

int main(int argc, char** argv) { return xfraud::cli::Main(argc, argv); }
