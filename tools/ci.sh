#!/usr/bin/env bash
# CI entrypoint. Modes:
#
#   tools/ci.sh                      # plain: hygiene + configure + build + test
#   tools/ci.sh --mode=plain
#   tools/ci.sh --mode=lint          # hygiene + xfraud_lint + xfraud_analyze
#                                    # + clang-tidy (no ctest)
#   tools/ci.sh --mode=analyze       # hygiene + xfraud_analyze only: the
#                                    # whole-program passes (layering DAG,
#                                    # include cycles, discarded Status,
#                                    # unordered iteration) against the
#                                    # checked-in baseline; writes an
#                                    # ANALYZE.json snapshot (gitignored)
#   tools/ci.sh --mode=ubsan         # build + test with XFRAUD_SANITIZE=undefined
#   tools/ci.sh --mode=tsan          # build + test with XFRAUD_SANITIZE=thread
#   tools/ci.sh --mode=asan          # build + test with XFRAUD_SANITIZE=address
#   tools/ci.sh --mode=faults        # build + test under a chaos fault plan
#                                    # (XFRAUD_FAULT_PLAN overrides the default)
#   tools/ci.sh --mode=mp            # multi-process leg: the MultiProcess
#                                    # fork/SIGKILL test suite under a hard
#                                    # timeout, a socket dist-bench smoke
#                                    # (real worker processes), a serving-tier
#                                    # chaos smoke (shard-server SIGKILL +
#                                    # respawn + wire corruption), and a
#                                    # bench_serve_mp snapshot
#   tools/ci.sh --mode=bench-smoke   # bench_nn_ops under ASan+UBSan (one
#                                    # short pass, serial and 4 kernel
#                                    # threads), then a plain-build run that
#                                    # snapshots BENCH_nn_ops.json
#
# An optional positional argument overrides the build directory (default:
# build for plain/lint, build-<mode> for sanitizer modes).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="plain"
BUILD_DIR=""
for arg in "$@"; do
  case "${arg}" in
    --mode=*) MODE="${arg#--mode=}" ;;
    --help|-h)
      sed -n '2,12p' "$0"
      exit 0
      ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

SANITIZE=""
case "${MODE}" in
  plain|lint|analyze|faults|mp|bench-smoke) ;;
  ubsan) SANITIZE="undefined" ;;
  tsan) SANITIZE="thread" ;;
  asan) SANITIZE="address" ;;
  *)
    echo "ci.sh: unknown mode '${MODE}' (plain|lint|analyze|ubsan|tsan|asan|faults|mp|bench-smoke)" >&2
    exit 2
    ;;
esac
if [[ -z "${BUILD_DIR}" ]]; then
  if [[ -n "${SANITIZE}" || "${MODE}" == "faults" || "${MODE}" == "mp" || "${MODE}" == "bench-smoke" ]]; then
    BUILD_DIR="build-${MODE}"
  else
    BUILD_DIR="build"
  fi
fi

# Chaos profile: transient KV errors and latency plus one worker kill,
# injected deterministically (fault/fault_plan.h grammar). The suite must
# pass anyway — retries, degraded batches, and DDP recovery absorb it.
if [[ "${MODE}" == "faults" ]]; then
  export XFRAUD_FAULT_PLAN="${XFRAUD_FAULT_PLAN:-seed=20260805,kv_error_rate=0.01,kv_latency_rate=0.005,kv_latency_s=0.0001,kill_worker=1@1:2}"
  echo "== fault plan: ${XFRAUD_FAULT_PLAN} =="
fi

echo "== hygiene =="
tools/check_no_build_artifacts.sh

# Whole-program analyzer: exits 1 on any finding not covered by the
# checked-in baseline (tools/analyze/analyze_baseline.txt — empty, and
# meant to stay that way). ANALYZE.json is the machine-readable snapshot.
run_analyze() {
  echo "== build xfraud_analyze =="
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target xfraud_analyze
  echo "== xfraud_analyze =="
  "${BUILD_DIR}/tools/xfraud_analyze" --json=ANALYZE.json
}

if [[ "${MODE}" == "analyze" ]]; then
  echo "== configure (for xfraud_analyze) =="
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  run_analyze
  echo "== analyze ok =="
  exit 0
fi

if [[ "${MODE}" == "lint" ]]; then
  echo "== configure (for xfraud_lint + compile db) =="
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  echo "== build xfraud_lint =="
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target xfraud_lint
  echo "== xfraud_lint =="
  "${BUILD_DIR}/tools/xfraud_lint"
  run_analyze
  echo "== clang-tidy =="
  tools/run_clang_tidy.sh "${BUILD_DIR}"
  echo "== lint ok =="
  exit 0
fi

# Bench smoke: every kernel and fusion path in bench_nn_ops executes once
# under ASan+UBSan (serial and 4 kernel threads — the parallel scatter and
# GEMM paths must be sanitizer-clean too), then a plain Release build emits
# a BENCH_nn_ops.json snapshot (gitignored) for before/after comparisons.
if [[ "${MODE}" == "bench-smoke" ]]; then
  echo "== configure (bench-smoke, address+undefined) =="
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DXFRAUD_SANITIZE="address,undefined"
  echo "== build bench_nn_ops (sanitized) =="
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_nn_ops
  echo "== bench_nn_ops smoke (sanitized, serial) =="
  "${BUILD_DIR}/bench/bench_nn_ops" --benchmark_min_time=0.01
  echo "== bench_nn_ops smoke (sanitized, 4 kernel threads) =="
  XFRAUD_KERNEL_THREADS=4 \
    "${BUILD_DIR}/bench/bench_nn_ops" --benchmark_min_time=0.01
  echo "== configure (plain snapshot) =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  echo "== build bench_nn_ops (plain) =="
  cmake --build build -j "$(nproc)" --target bench_nn_ops
  echo "== BENCH_nn_ops.json snapshot =="
  build/bench/bench_nn_ops --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_nn_ops.json --benchmark_out_format=json
  echo "== ci ok (${MODE}) =="
  exit 0
fi

echo "== configure (${MODE}) =="
CONFIG_ARGS=(-DCMAKE_BUILD_TYPE=Release)
if [[ -n "${SANITIZE}" ]]; then
  CONFIG_ARGS+=("-DXFRAUD_SANITIZE=${SANITIZE}")
fi
cmake -B "${BUILD_DIR}" -S . "${CONFIG_ARGS[@]}"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# Multi-process leg: real forked worker processes, real SIGKILLs, socket
# rendezvous. Everything runs under hard timeouts (ctest --timeout plus the
# launcher's own overall deadline) so a wedged ring can never hang CI.
if [[ "${MODE}" == "mp" ]]; then
  echo "== multi-process dist tests =="
  ctest --test-dir "${BUILD_DIR}" --output-on-failure \
        --timeout 600 -R '^xfraud_mp_tests$'
  echo "== socket dist-bench smoke =="
  MP_TMP="$(mktemp -d /tmp/xfraud-ci-mp.XXXXXX)"
  trap 'rm -rf "${MP_TMP}"' EXIT
  timeout 300 "${BUILD_DIR}/tools/xfraud_cli" generate \
    --out "${MP_TMP}/log.tsv" --scale small --seed 42
  timeout 300 "${BUILD_DIR}/tools/xfraud_cli" dist-bench \
    --log "${MP_TMP}/log.tsv" --transport=socket --workers=4 --epochs=1 \
    --checkpoint-dir "${MP_TMP}/ckpt" \
    --fault-plan "kill_worker=2@0:1"

  # Serving-tier chaos leg (DESIGN.md §16): fork a 2x2 grid of shard-server
  # processes, SIGKILL every shard's primary mid-load (supervisor respawns
  # from the cell WAL) and flip one frame byte on the wire (CRC-detected,
  # router resends). serve_mp_test.cc (in the ctest leg above) asserts the
  # scores are bit-identical to a single-process run and that replaying the
  # printed FaultPlan reproduces the outcome; this smoke drives the same
  # machinery through the CLI, then bench_serve_mp snapshots in-process vs
  # socket-transport tails.
  echo "== socket serve-bench chaos smoke =="
  timeout 300 "${BUILD_DIR}/tools/xfraud_cli" serve-bench \
    --log "${MP_TMP}/log.tsv" --transport=socket --shards=2 --replicas=2 \
    --requests=60 --deadline-ms=5000 --dir "${MP_TMP}/serve" \
    --fault-plan "kill_server=0@5,corrupt_frame=3"
  echo "== bench_serve_mp snapshot =="
  XFRAUD_BENCH_FAST=1 XFRAUD_METRICS_OUT=BENCH_serve_mp.json \
    timeout 300 "${BUILD_DIR}/bench/bench_serve_mp"
  echo "== ci ok (${MODE}) =="
  exit 0
fi

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Serving chaos leg: re-run the ServingChaos suites under a replica-failure
# plan (one replica of every shard dead plus flaky reads). The scoring
# service must keep answering — failover, breakers, and degraded mode
# absorb it; serve_test.cc asserts bit-identical scores across runs.
if [[ "${MODE}" == "faults" ]]; then
  echo "== serving chaos =="
  XFRAUD_FAULT_PLAN="seed=20260805,kill_replica=0,kv_error_rate=0.005" \
    "${BUILD_DIR}/tests/xfraud_tests" --gtest_filter='ServingChaos*'

  # Continuous-ingest chaos leg (DESIGN.md §15): streaming writers publish
  # MVCC epochs while pinned readers score and the compactor GCs, under
  # kill_replica + torn_write + stall_compaction. stream_test.cc asserts
  # pinned-epoch scores bit-identical to a fault-free run and zero torn
  # reads; the bench emits a metrics snapshot (gitignored) on top.
  echo "== continuous-ingest chaos =="
  "${BUILD_DIR}/tests/xfraud_tests" --gtest_filter='ContinuousIngest*'
  echo "== bench_continuous_ingest snapshot =="
  XFRAUD_BENCH_FAST=1 XFRAUD_METRICS_OUT=BENCH_continuous_ingest.json \
    "${BUILD_DIR}/bench/bench_continuous_ingest"
fi

echo "== ci ok (${MODE}) =="
