#!/usr/bin/env bash
# CI entrypoint: hygiene guards, then configure + build + test.
#
# Usage: tools/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== hygiene =="
tools/check_no_build_artifacts.sh

echo "== configure =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== ci ok =="
